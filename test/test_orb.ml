(* ORB integration tests: remote calls end to end (paper Figs. 4-5),
   across transports and protocols, including failure paths and the
   caching behaviour of Section 3.1. *)

let echo_type = "IDL:Test/Echo:1.0"

let echo_skeleton ?(trace = ref []) () =
  let log ev = trace := ev :: !trace in
  Orb.Skeleton.create ~type_id:echo_type
    [
      ("echo", fun args results ->
          log `Unmarshal;
          let s = args.Wire.Codec.get_string () in
          log `Invoke;
          results.Wire.Codec.put_string ("echo:" ^ s);
          log `Marshal_result);
      ("add", fun args results ->
          let a = args.Wire.Codec.get_long () in
          let b = args.Wire.Codec.get_long () in
          results.Wire.Codec.put_long (a + b));
      ("fail", fun _ _ ->
          raise
            (Orb.Skeleton.User_exception
               {
                 repo_id = "IDL:Test/Oops:1.0";
                 encode = (fun e -> e.Wire.Codec.put_string "details");
               }));
      ("crash", fun _ _ -> failwith "servant bug");
      ("sleepy", fun args results ->
          Thread.delay (float_of_int (args.Wire.Codec.get_long ()) /. 1000.);
          results.Wire.Codec.put_bool true);
      ("noreply", fun args _ -> ignore (args.Wire.Codec.get_string ()));
    ]

let configs =
  [
    ("mem/text", "mem", "local", Orb.Protocol.text);
    ("mem/giop", "mem", "local", Giop.protocol ());
    ("tcp/text", "tcp", "127.0.0.1", Orb.Protocol.text);
    ("tcp/giop-le", "tcp", "127.0.0.1", Giop.protocol ~order:Wire.Cdr_codec.Little_endian ());
  ]

let with_pair (name, transport, host, protocol) f =
  let server = Orb.create ~protocol ~transport ~host () in
  Orb.start server;
  let client = Orb.create ~protocol ~transport ~host () in
  Fun.protect
    ~finally:(fun () ->
      Orb.shutdown client;
      Orb.shutdown server)
    (fun () -> f ~name ~server ~client)

let invoke_string client target ~op s =
  match
    Orb.invoke client target ~op (fun e -> e.Wire.Codec.put_string s)
  with
  | Some d -> d.Wire.Codec.get_string ()
  | None -> Alcotest.fail "expected a reply"

let test_basic_calls () =
  List.iter
    (fun cfg ->
      with_pair cfg (fun ~name ~server ~client ->
          let target = Orb.export server (echo_skeleton ()) in
          Alcotest.(check string) (name ^ " echo") "echo:hi"
            (invoke_string client target ~op:"echo" "hi");
          (match
             Orb.invoke client target ~op:"add" (fun e ->
                 e.Wire.Codec.put_long 40;
                 e.Wire.Codec.put_long 2)
           with
          | Some d -> Alcotest.(check int) (name ^ " add") 42 (d.Wire.Codec.get_long ())
          | None -> Alcotest.fail "no reply");
          (* Several sequential calls over the same cached connection. *)
          for i = 1 to 10 do
            Alcotest.(check string) name
              (Printf.sprintf "echo:%d" i)
              (invoke_string client target ~op:"echo" (string_of_int i))
          done;
          Alcotest.(check int) (name ^ " one connection") 1
            (Orb.connections_opened client)))
    configs

let test_user_exception () =
  List.iter
    (fun cfg ->
      with_pair cfg (fun ~name ~server ~client ->
          let target = Orb.export server (echo_skeleton ()) in
          match Orb.invoke client target ~op:"fail" (fun _ -> ()) with
          | exception Orb.Remote_exception { repo_id; payload; codec } ->
              Alcotest.(check string) (name ^ " repo id") "IDL:Test/Oops:1.0" repo_id;
              let d = codec.Wire.Codec.decoder payload in
              Alcotest.(check string) (name ^ " members") "details"
                (d.Wire.Codec.get_string ())
          | _ -> Alcotest.fail "expected Remote_exception"))
    configs

let test_system_errors () =
  with_pair (List.hd configs) (fun ~name:_ ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      (* Unknown operation. *)
      (match Orb.invoke client target ~op:"nope" (fun _ -> ()) with
      | exception Orb.System_exception m ->
          Tutil.check_contains ~what:"unknown op" m "no operation"
      | _ -> Alcotest.fail "expected System_exception");
      (* Unknown object. *)
      let bogus = { target with Orb.Objref.oid = "99999" } in
      (match Orb.invoke client bogus ~op:"echo" (fun e -> e.Wire.Codec.put_string "x") with
      | exception Orb.System_exception m -> Tutil.check_contains ~what:"unknown oid" m "no object"
      | _ -> Alcotest.fail "expected System_exception");
      (* Servant crash is reported, connection survives. *)
      (match Orb.invoke client target ~op:"crash" (fun _ -> ()) with
      | exception Orb.System_exception m -> Tutil.check_contains ~what:"crash" m "servant bug"
      | _ -> Alcotest.fail "expected System_exception");
      Alcotest.(check string) "still alive" "echo:ok"
        (invoke_string client target ~op:"echo" "ok");
      (* Marshal error in the skeleton: handler reads a string, client
         sent a long. *)
      (match Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_long 3) with
      | exception Orb.System_exception m -> Tutil.check_contains ~what:"marshal" m "marshal error"
      | _ -> Alcotest.fail "expected System_exception");
      Alcotest.(check int) "single connection throughout" 1
        (Orb.connections_opened client))

let test_oneway () =
  with_pair (List.hd configs) (fun ~name:_ ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check bool) "no reply" true
        (Orb.invoke client target ~op:"noreply" ~oneway:true (fun e ->
             e.Wire.Codec.put_string "fire and forget")
        = None);
      (* The connection is still usable for synchronous calls after. *)
      Alcotest.(check string) "sync after oneway" "echo:x"
        (invoke_string client target ~op:"echo" "x"))

(* Fig. 4/5: the interaction order — marshal at the stub, unmarshal in
   the skeleton, invoke the implementation, marshal the result. *)
let test_interaction_trace () =
  with_pair (List.hd configs) (fun ~name:_ ~server ~client ->
      let trace = ref [] in
      let target = Orb.export server (echo_skeleton ~trace ()) in
      let client_marshalled = ref false in
      (match
         Orb.invoke client target ~op:"echo" (fun e ->
             client_marshalled := true;
             e.Wire.Codec.put_string "t")
       with
      | Some d -> ignore (d.Wire.Codec.get_string ())
      | None -> Alcotest.fail "no reply");
      Alcotest.(check bool) "stub marshalled" true !client_marshalled;
      Alcotest.(check bool) "server order" true
        (List.rev !trace = [ `Unmarshal; `Invoke; `Marshal_result ]))

let test_skeleton_cache () =
  (* Section 3.1: skeletons are created lazily and cached per address
     space; repeated passing of the same servant reuses the oid. *)
  with_pair (List.hd configs) (fun ~name:_ ~server ~client:_ ->
      let key = Orb.servant_key () in
      let built = ref 0 in
      let build () =
        incr built;
        echo_skeleton ()
      in
      let r1 = Orb.export_cached server ~key ~type_id:echo_type build in
      let r2 = Orb.export_cached server ~key ~type_id:echo_type build in
      Alcotest.(check bool) "same reference" true (Orb.Objref.equal r1 r2);
      Alcotest.(check int) "built once" 1 !built;
      Alcotest.(check int) "cache hit recorded" 1
        (Orb.Object_adapter.cache_hits (Orb.adapter server));
      (* A different servant gets a different oid. *)
      let r3 = Orb.export_cached server ~key:(Orb.servant_key ()) ~type_id:echo_type build in
      Alcotest.(check bool) "distinct" false (Orb.Objref.equal r1 r3))

let test_locate () =
  (* GIOP-style LocateRequest: the adapter answers without dispatching. *)
  List.iter
    (fun cfg ->
      with_pair cfg (fun ~name ~server ~client ->
          let target = Orb.export server (echo_skeleton ()) in
          Alcotest.(check bool) (name ^ " found") true (Orb.locate client target);
          let bogus = { target with Orb.Objref.oid = "424242" } in
          Alcotest.(check bool) (name ^ " missing") false (Orb.locate client bogus);
          (* Normal calls still work on the same connection. *)
          Alcotest.(check string) (name ^ " still callable") "echo:x"
            (invoke_string client target ~op:"echo" "x")))
    configs

let test_named_export () =
  with_pair (List.hd configs) (fun ~name:_ ~server ~client ->
      let target = Orb.export_named server ~oid:"bootstrap" (echo_skeleton ()) in
      Alcotest.(check string) "oid" "bootstrap" target.Orb.Objref.oid;
      Alcotest.(check string) "reachable" "echo:root"
        (invoke_string client target ~op:"echo" "root");
      (* Duplicate named export is rejected. *)
      match Orb.export_named server ~oid:"bootstrap" (echo_skeleton ()) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "duplicate oid accepted")

let test_concurrent_clients () =
  with_pair (List.nth configs 2) (fun ~name:_ ~server ~client:_ ->
      let target = Orb.export server (echo_skeleton ()) in
      let worker i =
        Thread.create
          (fun () ->
            let client = Orb.create ~transport:"tcp" ~host:"127.0.0.1" () in
            let ok = ref true in
            for j = 1 to 20 do
              let want = Printf.sprintf "echo:%d-%d" i j in
              let got = invoke_string client target ~op:"echo" (Printf.sprintf "%d-%d" i j) in
              if got <> want then ok := false
            done;
            Orb.shutdown client;
            !ok)
          ()
      in
      let threads = List.init 8 worker in
      List.iter Thread.join threads;
      Alcotest.(check int) "served all" (8 * 20) (Orb.requests_served server))

let test_shared_client_concurrency () =
  (* Many threads sharing ONE client ORB: the per-connection mutex must
     serialize request/reply exchanges without mixing them up. *)
  with_pair (List.hd configs) (fun ~name:_ ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      let failures = ref 0 in
      let fail_mutex = Mutex.create () in
      let worker i =
        Thread.create
          (fun () ->
            for j = 1 to 25 do
              let payload = Printf.sprintf "%d:%d" i j in
              let got = invoke_string client target ~op:"echo" payload in
              if got <> "echo:" ^ payload then (
                Mutex.lock fail_mutex;
                incr failures;
                Mutex.unlock fail_mutex)
            done)
          ()
      in
      let threads = List.init 6 worker in
      List.iter Thread.join threads;
      Alcotest.(check int) "no cross-talk" 0 !failures;
      Alcotest.(check int) "still one connection" 1 (Orb.connections_opened client))

let test_two_way_references () =
  (* Callbacks: the server invokes an object living in the client's
     address space, through the reference embedded in the request. *)
  with_pair (List.hd configs) (fun ~name:_ ~server ~client ->
      (* The client hosts the listener object, so it must be reachable. *)
      Orb.start client;
      let relayed = ref "" in
      let listener =
        Orb.Skeleton.create ~type_id:"IDL:Test/Listener:1.0"
          [ ("notify", fun args _ -> relayed := args.Wire.Codec.get_string ()) ]
      in
      let listener_ref = Orb.export client listener in
      let relay =
        Orb.Skeleton.create ~type_id:"IDL:Test/Relay:1.0"
          [
            ("send", fun args _ ->
                match Orb.Serial.get_byref args with
                | Some l ->
                    let text = args.Wire.Codec.get_string () in
                    ignore
                      (Orb.invoke server l ~op:"notify" (fun e ->
                           e.Wire.Codec.put_string ("relayed:" ^ text)))
                | None -> failwith "nil listener");
          ]
      in
      let relay_ref = Orb.export server relay in
      (match
         Orb.invoke client relay_ref ~op:"send" (fun e ->
             Orb.Serial.put_byref e (Some listener_ref);
             e.Wire.Codec.put_string "hello")
       with
      | Some _ -> ()
      | None -> Alcotest.fail "no reply");
      Alcotest.(check string) "callback delivered" "relayed:hello" !relayed)

let test_connection_retry_after_drop () =
  (* A stale cached connection is transparently reopened (client-side
     retry in Orb.invoke). We simulate by shutting the server listener
     down and restarting a fresh server on the same mem port is not
     possible; instead we drop the server side of the cached connection
     by restarting the whole server ORB on a fixed port. *)
  let port = 47113 in
  let server = Orb.create ~transport:"mem" ~host:"local" ~port () in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let client = Orb.create ~transport:"mem" ~host:"local" () in
  Alcotest.(check string) "first" "echo:a" (invoke_string client target ~op:"echo" "a");
  Orb.shutdown server;
  (* Bring up a replacement address space on the same port with the same
     oid layout. *)
  let server2 = Orb.create ~transport:"mem" ~host:"local" ~port () in
  Orb.start server2;
  let _ = Orb.export server2 (echo_skeleton ()) in
  Alcotest.(check string) "after reconnect" "echo:b"
    (invoke_string client target ~op:"echo" "b");
  Alcotest.(check int) "opened twice" 2 (Orb.connections_opened client);
  Orb.shutdown client;
  Orb.shutdown server2

let test_crash_restart_under_retry () =
  (* Crash-restart: the server ORB dies mid-session and a replacement
     comes up on the same port. A client with an explicit retry policy
     keeps working across the gap, and its stats record what happened. *)
  let port = 47117 in
  let fresh_server () =
    let s = Orb.create ~transport:"mem" ~host:"local" ~port () in
    Orb.start s;
    let r = Orb.export s (echo_skeleton ()) in
    (s, r)
  in
  let server, target = fresh_server () in
  let retry =
    { Orb.Retry.default with max_attempts = 4; base_delay = 0.005; jitter = 0. }
  in
  let client = Orb.create ~transport:"mem" ~host:"local" ~retry () in
  Alcotest.(check string) "before crash" "echo:a"
    (invoke_string client target ~op:"echo" "a");
  (* Crash and immediately restart: the client's cached connection is
     stale. The send fails before any reply bytes, so the policy safely
     drops the connection, reconnects to the new process and retries. *)
  Orb.shutdown server;
  let server2, _ = fresh_server () in
  Alcotest.(check string) "survives restart" "echo:b"
    (invoke_string client target ~op:"echo" "b");
  let st = Orb.stats client in
  Alcotest.(check int) "one reconnect retry" 1 st.Orb.retries;
  Alcotest.(check int) "reopened once" 2 st.Orb.opened;
  Alcotest.(check int) "served by the new process" 1 (Orb.requests_served server2);
  (* Now a real outage: the port goes dark. The policy burns its
     attempts and reports the failure instead of hanging. *)
  Orb.shutdown server2;
  (match invoke_string client target ~op:"echo" "lost" with
  | exception Orb.Transport.Transport_error _ -> ()
  | r -> Alcotest.failf "call into the outage returned %S" r);
  Alcotest.(check int) "attempts burned during outage" 4 (Orb.stats client).Orb.retries;
  (* And a second restart heals without intervention. *)
  let server3, _ = fresh_server () in
  Alcotest.(check string) "heals again" "echo:c"
    (invoke_string client target ~op:"echo" "c");
  Orb.shutdown client;
  Orb.shutdown server3

let test_server_connection_bound () =
  (* Regression (server-side leak): serve_connection must remove each
     closed connection from the accepted list, so churning clients leave
     the server near zero live connections, not a monotonic list. *)
  with_pair (List.hd configs) (fun ~name:_ ~server ~client:_ ->
      let target = Orb.export server (echo_skeleton ()) in
      for i = 1 to 8 do
        let c = Orb.create ~transport:"mem" ~host:"local" () in
        Alcotest.(check string) "call" ("echo:" ^ string_of_int i)
          (invoke_string c target ~op:"echo" (string_of_int i));
        Orb.shutdown c
      done;
      (* Closes propagate through the server's per-connection threads
         asynchronously; poll instead of a fixed sleep. *)
      let deadline = Unix.gettimeofday () +. 2.0 in
      let rec settle () =
        let live = (Orb.stats server).Orb.server_connections in
        if live <= 1 then live
        else if Unix.gettimeofday () > deadline then live
        else (
          Thread.delay 0.02;
          settle ())
      in
      let live = settle () in
      Alcotest.(check bool)
        (Printf.sprintf "connections reaped (%d live)" live)
        true (live <= 1))

let test_reply_id_mismatch_drops_connection () =
  (* Regression: a reply whose id does not match the request means the
     stream is desynchronized — whatever reply belongs to this request
     may still be in flight. The client must drop the cached connection
     before raising, or the next call on it would be handed the stale
     reply. *)
  with_pair (List.hd configs) (fun ~name:_ ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check string) "first call" "echo:a"
        (invoke_string client target ~op:"echo" "a");
      (* A server-side interceptor corrupts exactly one reply id — a
         scripted faulty peer. *)
      let corrupted = ref false in
      Orb.Interceptor.add
        (Orb.server_interceptors server)
        (Orb.Interceptor.make "corrupt-one-rep-id" ~on_reply:(fun _req rep ->
             if !corrupted then rep
             else begin
               corrupted := true;
               { rep with Orb.Protocol.rep_id = rep.Orb.Protocol.rep_id + 1000 }
             end));
      (match invoke_string client target ~op:"echo" "b" with
      | exception Orb.System_exception m ->
          Tutil.check_contains ~what:"mismatch reported" m "does not match"
      | r -> Alcotest.failf "corrupted reply returned %S" r);
      (* The poisoned connection was dropped: the next call transparently
         reconnects and sees a clean stream. *)
      Alcotest.(check string) "after drop" "echo:c"
        (invoke_string client target ~op:"echo" "c");
      Alcotest.(check int) "reconnected" 2 (Orb.stats client).Orb.opened)

let test_smart_proxy_oneway_rewrite () =
  (* Regression: an interceptor rewriting a call to oneway starves the
     smart proxy of the reply it wants to cache. That must surface as a
     System_exception naming the operation — it used to be an assertion
     failure. (Also exercises the invoke path honouring the
     post-interceptor oneway flag: were it ignored, this test would hang
     waiting for a reply the server never sends.) *)
  with_pair (List.hd configs) (fun ~name:_ ~server ~client ->
      let target = Orb.export server (echo_skeleton ()) in
      Orb.Interceptor.add
        (Orb.client_interceptors client)
        (Orb.Interceptor.make "force-oneway" ~on_request:(fun req ->
             if req.Orb.Protocol.operation = "noreply" then
               { req with Orb.Protocol.oneway = true }
             else req));
      let proxy = Orb.smart_proxy client target in
      (match
         Orb.Smart.call proxy ~op:"noreply" (fun e -> e.Wire.Codec.put_string "x")
       with
      | exception Orb.System_exception m ->
          Tutil.check_contains ~what:"oneway reported" m "oneway";
          Tutil.check_contains ~what:"operation named" m "noreply"
      | _ -> Alcotest.fail "expected System_exception");
      (* Untouched operations still work through the proxy. *)
      let d = Orb.Smart.call proxy ~op:"echo" (fun e -> e.Wire.Codec.put_string "y") in
      Alcotest.(check string) "proxy still works" "echo:y" (d.Wire.Codec.get_string ()))

let test_server_connections_gauge () =
  (* Regression: [stats.server_connections] must track LIVE connections —
     an entry that is closed but not yet reaped by its serving thread
     must not count. *)
  with_pair (List.hd configs) (fun ~name:_ ~server ~client:_ ->
      let target = Orb.export server (echo_skeleton ()) in
      Alcotest.(check int) "idle" 0 (Orb.stats server).Orb.server_connections;
      let c = Orb.create ~transport:"mem" ~host:"local" () in
      Alcotest.(check string) "call" "echo:x" (invoke_string c target ~op:"echo" "x");
      (* The accept loop registers the connection before serving it, so
         after a completed call the gauge reads exactly one. *)
      Alcotest.(check int) "one live" 1 (Orb.stats server).Orb.server_connections;
      Orb.shutdown c;
      (* The disconnect propagates asynchronously; poll until the gauge
         drops. With the is_closed filter this happens as soon as the
         serving thread closes the communicator, reaped or not. *)
      let deadline = Unix.gettimeofday () +. 2.0 in
      let rec settle () =
        let live = (Orb.stats server).Orb.server_connections in
        if live = 0 then 0
        else if Unix.gettimeofday () > deadline then live
        else (
          Thread.delay 0.02;
          settle ())
      in
      Alcotest.(check int) "gauge returns to zero" 0 (settle ()))

let () =
  Alcotest.run "orb"
    [
      ( "calls",
        [
          Alcotest.test_case "basic calls (all configs)" `Quick test_basic_calls;
          Alcotest.test_case "user exceptions" `Quick test_user_exception;
          Alcotest.test_case "system errors" `Quick test_system_errors;
          Alcotest.test_case "oneway" `Quick test_oneway;
          Alcotest.test_case "interaction trace (Figs. 4-5)" `Quick test_interaction_trace;
        ] );
      ( "caching",
        [
          Alcotest.test_case "skeleton cache" `Quick test_skeleton_cache;
          Alcotest.test_case "named export" `Quick test_named_export;
          Alcotest.test_case "locate (GIOP LocateRequest)" `Quick test_locate;
          Alcotest.test_case "reconnect after drop" `Quick test_connection_retry_after_drop;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "crash-restart under retry policy" `Quick
            test_crash_restart_under_retry;
          Alcotest.test_case "server connections bounded" `Quick
            test_server_connection_bound;
          Alcotest.test_case "reply-id mismatch drops connection" `Quick
            test_reply_id_mismatch_drops_connection;
          Alcotest.test_case "smart proxy vs oneway rewrite" `Quick
            test_smart_proxy_oneway_rewrite;
          Alcotest.test_case "server connections gauge" `Quick
            test_server_connections_gauge;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "shared client, many threads" `Quick
            test_shared_client_concurrency;
          Alcotest.test_case "bidirectional references" `Quick test_two_way_references;
        ] );
    ]
