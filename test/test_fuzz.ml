(* Robustness fuzzing: hostile inputs must produce typed errors, never
   crashes or unexpected exceptions. These are the failure-injection
   counterparts to the happy-path property tests. *)

(* ------------- IDL parser on mutated source ------------- *)

let idl_seeds =
  [
    "module Heidi { interface A : S { void f(in A a); }; };";
    "enum E { a, b }; const long K = 1 + 2 * 3;";
    "union U switch (long) { case 1: long a; default: string b; };";
    "typedef sequence<sequence<long>, 4> M; struct S2 { M m; };";
    "interface I { oneway void f(in string s); readonly attribute long x; };";
  ]

let gen_mutated_idl =
  QCheck.Gen.(
    let* seed = oneofl idl_seeds in
    let* mutations = int_range 1 6 in
    let rec mutate s k st =
      if k = 0 || String.length s = 0 then s
      else
        let pos = Random.State.int st (String.length s) in
        let s =
          match Random.State.int st 4 with
          | 0 ->
              (* delete a char *)
              String.sub s 0 pos ^ String.sub s (pos + 1) (String.length s - pos - 1)
          | 1 ->
              (* duplicate a char *)
              String.sub s 0 pos ^ String.make 1 s.[pos] ^ String.sub s pos (String.length s - pos)
          | 2 ->
              (* flip to a random printable *)
              String.mapi
                (fun i c -> if i = pos then Char.chr (32 + Random.State.int st 95) else c)
                s
          | _ ->
              (* insert a hostile token *)
              let tokens = [| "}{"; ";;"; "::"; "<<"; "\"\""; "= ="; "interface"; "\x01" |] in
              String.sub s 0 pos
              ^ tokens.(Random.State.int st (Array.length tokens))
              ^ String.sub s pos (String.length s - pos)
        in
        mutate s (k - 1) st
    in
    fun st -> mutate seed mutations st)

let idl_fuzz =
  QCheck.Test.make ~count:1000 ~name:"mutated IDL: parse+resolve only raises Idl_error"
    (QCheck.make ~print:(fun s -> s) gen_mutated_idl)
    (fun src ->
      match Est.Resolve.spec (Idl.Parser.parse_string src) with
      | _ -> true
      | exception Idl.Diag.Idl_error _ -> true)

(* ------------- template parser on directive soup ------------- *)

let gen_template_soup =
  QCheck.Gen.(
    let piece =
      oneofl
        [
          "@foreach xs -ifMore ','\n"; "@end xs\n"; "@end\n"; "@if ${v} == \"x\"\n";
          "@else\n"; "@fi\n"; "text ${v} more\n"; "joined \\\n"; "@openfile ${v}.out\n";
          "@# comment\n"; "${v:Some::Map}\n"; "$\\{literal}\n"; "@if ${v}\n";
          "@foreach ys -map v Fn\n"; "@wibble\n"; "${unterminated\n"; "@@literal\n";
        ]
    in
    let* pieces = list_size (int_range 1 15) piece in
    return (String.concat "" pieces))

let template_fuzz =
  QCheck.Test.make ~count:1000
    ~name:"template soup: parse only raises Template_error"
    (QCheck.make ~print:(fun s -> s) gen_template_soup)
    (fun src ->
      match Template.Parse.parse ~name:"<fuzz>" src with
      | _ -> true
      | exception Template.Parse.Template_error _ -> true)

(* Well-formed templates evaluated against a node missing the variables
   they mention must fail with Eval_error, not anything else. *)
let eval_fuzz =
  QCheck.Test.make ~count:500
    ~name:"template evaluation on empty EST: Eval_error only"
    (QCheck.make ~print:(fun s -> s) gen_template_soup)
    (fun src ->
      match Template.Parse.parse ~name:"<fuzz>" src with
      | exception Template.Parse.Template_error _ -> true
      | tmpl -> (
          let node = Est.Node.create ~name:"" ~kind:"Root" in
          match Template.Eval.run tmpl node with
          | _ -> true
          | exception Template.Eval.Eval_error _ -> true))

(* ------------- codecs on random bytes ------------- *)

let gen_bytes =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_range 0 64))

let decode_ops (d : Wire.Codec.decoder) =
  [
    (fun () -> ignore (d.Wire.Codec.get_bool ()));
    (fun () -> ignore (d.Wire.Codec.get_char ()));
    (fun () -> ignore (d.Wire.Codec.get_octet ()));
    (fun () -> ignore (d.Wire.Codec.get_short ()));
    (fun () -> ignore (d.Wire.Codec.get_long ()));
    (fun () -> ignore (d.Wire.Codec.get_longlong ()));
    (fun () -> ignore (d.Wire.Codec.get_double ()));
    (fun () -> ignore (d.Wire.Codec.get_string ()));
    (fun () -> ignore (d.Wire.Codec.get_len ()));
    (fun () -> d.Wire.Codec.get_begin ());
  ]

let codec_fuzz (codec : Wire.Codec.t) =
  QCheck.Test.make ~count:1000
    ~name:(codec.Wire.Codec.name ^ " decoder on random bytes: Type_error only")
    (QCheck.make
       ~print:(fun (s, _) -> String.escaped s)
       QCheck.Gen.(pair gen_bytes (list_size (int_range 1 8) (int_bound 9))))
    (fun (bytes, ops) ->
      let d = codec.Wire.Codec.decoder bytes in
      List.for_all
        (fun i ->
          match (List.nth (decode_ops d) i) () with
          | () -> true
          | exception Wire.Codec.Type_error _ -> true)
        ops)

(* ------------- protocol decoder on random bytes ------------- *)

let protocol_fuzz (proto : Orb.Protocol.t) =
  QCheck.Test.make ~count:1000
    ~name:(proto.Orb.Protocol.name ^ " decode_message on random bytes")
    (QCheck.make ~print:String.escaped gen_bytes)
    (fun bytes ->
      match proto.Orb.Protocol.decode_message bytes with
      | _ -> true
      | exception Orb.Protocol.Protocol_error _ -> true)

(* ------------- objref parser on random strings ------------- *)

let objref_fuzz =
  QCheck.Test.make ~count:1000 ~name:"objref parser on random strings never raises"
    (QCheck.make ~print:String.escaped
       QCheck.Gen.(
         string_size
           ~gen:(oneof [ oneofl [ '@'; ':'; '#'; '.' ]; printable ])
           (int_range 0 40)))
    (fun s ->
      match Orb.Objref.of_string_opt s with
      | Some r ->
          (* Anything accepted must round-trip. *)
          Orb.Objref.equal r (Orb.Objref.of_string (Orb.Objref.to_string r))
      | None -> true)

(* ------------- EST dump reader on corrupted dumps ------------- *)

let est_dump_fuzz =
  let base =
    Est.Dump.to_text
      (Core.Compiler.est_of_string "module M { interface I { void f(); }; };")
  in
  QCheck.Test.make ~count:500 ~name:"corrupted EST dumps: Failure only"
    (QCheck.make
       ~print:(fun (pos, c) -> Printf.sprintf "flip %d to %C" pos c)
       QCheck.Gen.(pair (int_bound (String.length base - 1)) printable))
    (fun (pos, c) ->
      let corrupted =
        String.mapi (fun i orig -> if i = pos then c else orig) base
      in
      match Est.Dump.of_text corrupted with
      | _ -> true
      | exception Failure _ -> true)

let () =
  Alcotest.run "fuzz"
    [
      ( "hostile inputs",
        List.map QCheck_alcotest.to_alcotest
          [
            idl_fuzz;
            template_fuzz;
            eval_fuzz;
            codec_fuzz Wire.Text_codec.codec;
            codec_fuzz (Wire.Cdr_codec.codec Wire.Cdr_codec.Big_endian);
            protocol_fuzz Orb.Protocol.text;
            protocol_fuzz (Giop.protocol ());
            objref_fuzz;
            est_dump_fuzz;
          ] );
    ]
