(* Wire codec tests: the HeidiRMI text codec and the CDR binary codec.
   Round-trip properties over random value trees, plus format-level
   checks (alignment, byte order, type tagging, error paths). *)

module W = Wire.Wvalue

let text = Wire.Text_codec.codec
let cdr_be = Wire.Cdr_codec.codec Wire.Cdr_codec.Big_endian
let cdr_le = Wire.Cdr_codec.codec Wire.Cdr_codec.Little_endian
let hcx = Wire.Hcx_codec.codec
let all_codecs = [ text; cdr_be; cdr_le; hcx ]

let roundtrip (codec : Wire.Codec.t) v =
  let e = codec.Wire.Codec.encoder () in
  W.encode e v;
  let payload = e.Wire.Codec.finish () in
  let d = codec.Wire.Codec.decoder payload in
  W.decode_like d v

(* ---------------- unit: specific values through every codec -------- *)

let sample_values =
  [
    W.Bool true;
    W.Bool false;
    W.Char 'x';
    W.Char '\000';
    W.Octet 255;
    W.Short (-32768);
    W.Ushort 65535;
    W.Long (-2147483648);
    W.Ulong 4294967295;
    W.Longlong Int64.min_int;
    W.Ulonglong (-1L);
    W.Float 1.5;
    W.Double 3.141592653589793;
    W.String "";
    W.String "hello world";
    W.String "with \"quotes\" and \\slashes\\ and\nnewlines";
    W.Seq [];
    W.Seq [ W.Long 1; W.Long 2; W.Long 3 ];
    W.Group [ W.String "point"; W.Long 3; W.Long 4 ];
    W.Seq [ W.Group [ W.String "a"; W.Bool true ]; W.Group [ W.String "b"; W.Bool false ] ];
  ]

let test_samples () =
  List.iter
    (fun codec ->
      List.iter
        (fun v ->
          let got = roundtrip codec v in
          if not (W.equal v got) then
            Alcotest.failf "codec %s: %s round-tripped to %s"
              codec.Wire.Codec.name
              (Format.asprintf "%a" W.pp v)
              (Format.asprintf "%a" W.pp got))
        sample_values)
    all_codecs

let test_empty_seq_needs_no_witness () =
  (* Decoding Seq [] works even without an element witness as long as the
     wire length is 0. *)
  List.iter
    (fun codec ->
      match roundtrip codec (W.Seq []) with
      | W.Seq [] -> ()
      | _ -> Alcotest.fail "empty seq")
    all_codecs

(* ---------------- text codec specifics ---------------- *)

let test_text_is_single_line () =
  let e = text.Wire.Codec.encoder () in
  W.encode e (W.String "line1\nline2\rline3");
  let payload = e.Wire.Codec.finish () in
  Alcotest.(check bool) "no raw newline" false (String.contains payload '\n');
  Alcotest.(check bool) "no raw CR" false (String.contains payload '\r')

let test_text_human_readable () =
  let e = text.Wire.Codec.encoder () in
  e.Wire.Codec.put_long 42;
  e.Wire.Codec.put_bool true;
  e.Wire.Codec.put_string "hi";
  Alcotest.(check string) "tokens" "l42 bT s\"hi\"" (e.Wire.Codec.finish ())

let test_text_type_checking () =
  (* The text protocol detects type mismatches — a property CDR cannot
     have (it is positional and untyped). *)
  let e = text.Wire.Codec.encoder () in
  e.Wire.Codec.put_long 1;
  let payload = e.Wire.Codec.finish () in
  let d = text.Wire.Codec.decoder payload in
  match d.Wire.Codec.get_string () with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "expected a type error"

let test_text_range_checks () =
  let e = text.Wire.Codec.encoder () in
  (match e.Wire.Codec.put_short 40000 with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "short range");
  let e = text.Wire.Codec.encoder () in
  match e.Wire.Codec.put_octet (-1) with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "octet range"

let test_text_truncation () =
  let d = text.Wire.Codec.decoder "l1" in
  ignore (d.Wire.Codec.get_long ());
  Alcotest.(check bool) "at_end" true (d.Wire.Codec.at_end ());
  match d.Wire.Codec.get_long () with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "expected end-of-payload error"

let test_text_escape_roundtrip () =
  let s = "a\\b\"c\nd\re" in
  Alcotest.(check string) "escape" s
    (Wire.Text_codec.unescape (Wire.Text_codec.escape s))

(* ---------------- CDR specifics ---------------- *)

let test_cdr_alignment () =
  (* octet at 0, then long must start at offset 4 (3 padding bytes). *)
  let e = cdr_be.Wire.Codec.encoder () in
  e.Wire.Codec.put_octet 1;
  e.Wire.Codec.put_long 2;
  let p = e.Wire.Codec.finish () in
  Alcotest.(check int) "length" 8 (String.length p);
  Alcotest.(check char) "pad" '\000' p.[1];
  (* octet then double: 7 padding bytes, total 16. *)
  let e = cdr_be.Wire.Codec.encoder () in
  e.Wire.Codec.put_octet 1;
  e.Wire.Codec.put_double 1.0;
  Alcotest.(check int) "double align" 16 (String.length (e.Wire.Codec.finish ()))

let test_cdr_byte_order () =
  let enc codec =
    let e = codec.Wire.Codec.encoder () in
    e.Wire.Codec.put_long 1;
    e.Wire.Codec.finish ()
  in
  Alcotest.(check string) "big endian" "\000\000\000\001" (enc cdr_be);
  Alcotest.(check string) "little endian" "\001\000\000\000" (enc cdr_le)

let test_cdr_string_format () =
  (* ulong length (incl NUL), bytes, NUL. *)
  let e = cdr_be.Wire.Codec.encoder () in
  e.Wire.Codec.put_string "hi";
  Alcotest.(check string) "layout" "\000\000\000\003hi\000" (e.Wire.Codec.finish ())

let test_cdr_truncation () =
  let d = cdr_be.Wire.Codec.decoder "\000\000" in
  match d.Wire.Codec.get_long () with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "expected truncation error"

let test_cdr_bad_bool_and_string () =
  let d = cdr_be.Wire.Codec.decoder "\007" in
  (match d.Wire.Codec.get_bool () with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "bad bool byte");
  (* String with zero length is malformed (must include NUL). *)
  let d = cdr_be.Wire.Codec.decoder "\000\000\000\000" in
  match d.Wire.Codec.get_string () with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "zero-length CDR string"

let test_size_comparison () =
  (* Sanity for bench §E2/§E15: for numeric payloads CDR is denser than
     text and HCX denser still (varints beat fixed 4-byte longs); all
     codecs grow linearly in sequence length. *)
  let seq n = W.Seq (List.init n (fun i -> W.Long (1000000 + i))) in
  let size codec v =
    let e = codec.Wire.Codec.encoder () in
    W.encode e v;
    String.length (e.Wire.Codec.finish ())
  in
  Alcotest.(check bool) "cdr denser for longs" true
    (size cdr_be (seq 64) < size text (seq 64));
  Alcotest.(check bool) "hcx denser than cdr" true
    (size hcx (seq 64) < size cdr_be (seq 64));
  Alcotest.(check bool) "text grows" true (size text (seq 128) > size text (seq 64))

(* ---------------- HCX specifics ---------------- *)

(* Encode one value through HCX and strip the leading version byte, so
   assertions below talk about the field encoding alone. *)
let hcx_field put =
  let e = hcx.Wire.Codec.encoder () in
  put e;
  let p = e.Wire.Codec.finish () in
  Alcotest.(check char) "version byte" '\001' p.[0];
  String.sub p 1 (String.length p - 1)

let test_hcx_version_byte () =
  let e = hcx.Wire.Codec.encoder () in
  e.Wire.Codec.put_long 7;
  let p = e.Wire.Codec.finish () in
  Alcotest.(check char) "leading byte is the format version" '\001' p.[0];
  (* A frame from a future encoder fails at decoder construction,
     before any field is interpreted. *)
  let bogus = "\002" ^ String.sub p 1 (String.length p - 1) in
  match hcx.Wire.Codec.decoder bogus with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "expected version rejection"

let test_hcx_varint_layout () =
  (* LEB128, LSB group first, minimal length. *)
  let ulong v = hcx_field (fun e -> e.Wire.Codec.put_ulong v) in
  Alcotest.(check string) "0 is one byte" "\000" (ulong 0);
  Alcotest.(check string) "127 is one byte" "\127" (ulong 127);
  Alcotest.(check string) "128 is two bytes" "\128\001" (ulong 128);
  Alcotest.(check string) "300 = ac 02" "\172\002" (ulong 300);
  Alcotest.(check string) "2^32-1 is five bytes" "\255\255\255\255\015"
    (ulong 4294967295);
  (* Signed values zigzag before the varint. *)
  let long v = hcx_field (fun e -> e.Wire.Codec.put_long v) in
  Alcotest.(check string) "-1 zigzags to 1" "\001" (long (-1));
  Alcotest.(check string) "1 zigzags to 2" "\002" (long 1);
  Alcotest.(check string) "min long is five bytes" "\255\255\255\255\015"
    (long (-2147483648))

let test_hcx_no_padding () =
  (* octet then double: version + 1 + 8 = 10 bytes, no alignment holes
     (the same pair costs 16 payload bytes in CDR). *)
  let e = hcx.Wire.Codec.encoder () in
  e.Wire.Codec.put_octet 1;
  e.Wire.Codec.put_double 1.0;
  Alcotest.(check int) "no alignment padding" 10
    (String.length (e.Wire.Codec.finish ()))

let test_hcx_boundary_varints () =
  (* Every LEB128 group boundary, both signs, both integer widths. *)
  List.iter
    (fun v ->
      match roundtrip hcx (W.Long v) with
      | W.Long got -> Alcotest.(check int) (string_of_int v) v got
      | _ -> Alcotest.fail "long shape")
    [ 0; 1; -1; 127; 128; 129; 16383; 16384; 2097151; 2097152;
      2147483647; -2147483648 ];
  List.iter
    (fun v ->
      match roundtrip hcx (W.Ulong v) with
      | W.Ulong got -> Alcotest.(check int) (string_of_int v) v got
      | _ -> Alcotest.fail "ulong shape")
    [ 0; 127; 128; 16384; 4294967295 ];
  List.iter
    (fun v ->
      match roundtrip hcx (W.Longlong v) with
      | W.Longlong got ->
          Alcotest.(check int64) (Int64.to_string v) v got
      | _ -> Alcotest.fail "longlong shape")
    [ 0L; -1L; Int64.min_int; Int64.max_int ];
  match roundtrip hcx (W.Ulonglong (-1L)) with
  | W.Ulonglong got -> Alcotest.(check int64) "2^64-1" (-1L) got
  | _ -> Alcotest.fail "ulonglong shape"

let test_hcx_truncated_varint () =
  (* A continuation bit with no following byte must fail as truncation,
     not read past the frame. *)
  let d = hcx.Wire.Codec.decoder "\001\128" in
  (match d.Wire.Codec.get_ulong () with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "truncated varint accepted");
  (* More groups than any encoder emits is rejected by arithmetic. *)
  let d = hcx.Wire.Codec.decoder ("\001" ^ String.make 10 '\255' ^ "\001") in
  match d.Wire.Codec.get_ulong () with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "over-long varint accepted"

let test_hcx_hostile_lengths () =
  (* A hostile length prefix fails before allocation: a claimed
     4-billion-byte string on a tiny frame. *)
  let e = hcx.Wire.Codec.encoder () in
  e.Wire.Codec.put_ulong 4294967295;
  let p = e.Wire.Codec.finish () in
  let d = hcx.Wire.Codec.decoder p in
  (match d.Wire.Codec.get_string () with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "hostile string length accepted");
  let d = hcx.Wire.Codec.decoder p in
  match d.Wire.Codec.get_len () with
  | exception Wire.Codec.Type_error _ -> ()
  | _ -> Alcotest.fail "hostile sequence length accepted"

let test_hcx_decoder_view () =
  (* The zero-copy receive path: decode from a sub-view of a larger
     buffer without taking a String.sub of the frame. *)
  let e = hcx.Wire.Codec.encoder () in
  e.Wire.Codec.put_long 42;
  e.Wire.Codec.put_string "view";
  let frame = e.Wire.Codec.finish () in
  let padded = "JUNK" ^ frame ^ "TRAILER" in
  let d =
    Wire.Hcx_codec.make_decoder_view Wire.Codec.default_limits padded ~off:4
      ~len:(String.length frame)
  in
  Alcotest.(check int) "long through view" 42 (d.Wire.Codec.get_long ());
  Alcotest.(check string) "string through view" "view" (d.Wire.Codec.get_string ());
  Alcotest.(check bool) "view ends at frame end" true (d.Wire.Codec.at_end ())

(* ---------------- decode limits ---------------- *)

let test_nesting_depth_pinned () =
  (* DESIGN.md and codec.mli both say depth 128; pin the number so the
     docs cannot silently diverge from the code again. *)
  Alcotest.(check int) "default nesting depth is 128" 128
    Wire.Codec.default_limits.Wire.Codec.max_nesting_depth;
  (* 128 nested get_begin are fine, the 129th trips — begin/end are
     byteless in HCX so the decoder's own counter is the only guard. *)
  let d = hcx.Wire.Codec.decoder "\001" in
  for _ = 1 to 128 do
    d.Wire.Codec.get_begin ()
  done;
  (match d.Wire.Codec.get_begin () with
  | exception Wire.Codec.Type_error _ -> ()
  | () -> Alcotest.fail "129th nesting level accepted");
  (* Balanced begin/end at the edge stays under the limit. *)
  let d = hcx.Wire.Codec.decoder "\001" in
  for _ = 1 to 3 do
    for _ = 1 to 128 do
      d.Wire.Codec.get_begin ()
    done;
    for _ = 1 to 128 do
      d.Wire.Codec.get_end ()
    done
  done;
  (* Custom limits apply to every codec's decoder_limited. *)
  let tiny =
    { Wire.Codec.default_limits with Wire.Codec.max_nesting_depth = 2 }
  in
  List.iter
    (fun codec ->
      let deep = W.Group [ W.Group [ W.Group [ W.Long 1 ] ] ] in
      let e = codec.Wire.Codec.encoder () in
      W.encode e deep;
      let p = e.Wire.Codec.finish () in
      match W.decode_like (codec.Wire.Codec.decoder_limited tiny p) deep with
      | exception Wire.Codec.Type_error _ -> ()
      | _ -> Alcotest.failf "%s: depth limit not enforced" codec.Wire.Codec.name)
    all_codecs

(* ---------------- round-trip property ---------------- *)

let gen_wvalue =
  QCheck.Gen.(
    let leaf =
      oneof
        [
          map (fun b -> W.Bool b) bool;
          map (fun c -> W.Char c) (map Char.chr (int_bound 255));
          map (fun n -> W.Octet (abs n mod 256)) small_int;
          map (fun n -> W.Short (n mod 32768)) int;
          map (fun n -> W.Ushort (abs n mod 65536)) int;
          map (fun n -> W.Long (n mod 2147483648)) int;
          map (fun n -> W.Ulong (abs n mod 4294967296)) int;
          map (fun n -> W.Longlong (Int64.of_int n)) int;
          map (fun n -> W.Ulonglong (Int64.of_int n)) int;
          map (fun f -> W.Float f) (float_bound_inclusive 1e9);
          map (fun f -> W.Double f) (float_bound_inclusive 1e12);
          map (fun s -> W.String s) (string_size ~gen:printable (int_bound 40));
        ]
    in
    let rec tree depth =
      if depth = 0 then leaf
      else
        frequency
          [
            (4, leaf);
            ( 1,
              (* All sequence elements share the first element's shape so
                 that schema-guided decode applies. *)
              let* elem = tree 0 in
              let* n = int_bound 6 in
              let clone = function
                | W.Long _ -> map (fun v -> W.Long (v mod 2147483648)) int
                | W.String _ -> map (fun s -> W.String s) (string_size ~gen:printable (int_bound 20))
                | v -> return v
              in
              let* items = flatten_l (List.init n (fun _ -> clone elem)) in
              return (W.Seq items) );
            ( 1,
              let* items = list_size (int_bound 4) (tree (depth - 1)) in
              return (W.Group items) );
          ]
    in
    tree 3)

let roundtrip_prop codec =
  QCheck.Test.make ~count:300
    ~name:(Printf.sprintf "%s round-trips" codec.Wire.Codec.name)
    (QCheck.make ~print:(Format.asprintf "%a" W.pp) gen_wvalue)
    (fun v -> W.equal v (roundtrip codec v))

(* Cross-codec: the same value tree encodes/decodes under every codec to
   the same result (protocol-independence of the Call abstraction). *)
let cross_codec_prop =
  QCheck.Test.make ~count:200 ~name:"codecs agree on decoded values"
    (QCheck.make ~print:(Format.asprintf "%a" W.pp) gen_wvalue)
    (fun v ->
      let results = List.map (fun c -> roundtrip c v) all_codecs in
      List.for_all (fun r -> W.equal r (List.hd results)) results)

let () =
  Alcotest.run "codecs"
    [
      ( "unit",
        [
          Alcotest.test_case "samples through all codecs" `Quick test_samples;
          Alcotest.test_case "empty sequences" `Quick test_empty_seq_needs_no_witness;
        ] );
      ( "text",
        [
          Alcotest.test_case "single line" `Quick test_text_is_single_line;
          Alcotest.test_case "human readable" `Quick test_text_human_readable;
          Alcotest.test_case "type checking" `Quick test_text_type_checking;
          Alcotest.test_case "range checks" `Quick test_text_range_checks;
          Alcotest.test_case "truncation" `Quick test_text_truncation;
          Alcotest.test_case "escapes" `Quick test_text_escape_roundtrip;
        ] );
      ( "cdr",
        [
          Alcotest.test_case "alignment" `Quick test_cdr_alignment;
          Alcotest.test_case "byte order" `Quick test_cdr_byte_order;
          Alcotest.test_case "string layout" `Quick test_cdr_string_format;
          Alcotest.test_case "truncation" `Quick test_cdr_truncation;
          Alcotest.test_case "malformed bytes" `Quick test_cdr_bad_bool_and_string;
          Alcotest.test_case "size comparison" `Quick test_size_comparison;
        ] );
      ( "hcx",
        [
          Alcotest.test_case "version byte" `Quick test_hcx_version_byte;
          Alcotest.test_case "varint layout" `Quick test_hcx_varint_layout;
          Alcotest.test_case "no padding" `Quick test_hcx_no_padding;
          Alcotest.test_case "boundary varints" `Quick test_hcx_boundary_varints;
          Alcotest.test_case "truncated + over-long varints" `Quick
            test_hcx_truncated_varint;
          Alcotest.test_case "hostile lengths" `Quick test_hcx_hostile_lengths;
          Alcotest.test_case "decoder view" `Quick test_hcx_decoder_view;
          Alcotest.test_case "nesting depth pinned" `Quick
            test_nesting_depth_pinned;
        ] );
      ( "property",
        QCheck_alcotest.to_alcotest cross_codec_prop
        :: List.map (fun c -> QCheck_alcotest.to_alcotest (roundtrip_prop c)) all_codecs
      );
    ]
