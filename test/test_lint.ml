(* Tests for the static-analysis subsystem (lib/analysis): the bad-IDL
   corpus against its golden diagnostics, error recovery, the JSON
   renderer, per-code enable/disable, the template checker, the
   interface-evolution checker, and the code table. *)

module Diag = Idl.Diag

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_source ?mappings src =
  let reporter = Diag.reporter () in
  let spec = Analysis.Lint.run_source ?mappings reporter ~filename:"t.idl" src in
  (reporter, spec)

let codes reporter =
  List.map (fun d -> d.Diag.code) (Diag.diagnostics reporter)

(* ---------------- corpus goldens ---------------- *)

let corpus_dir = "idl/bad"

let corpus_cases () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".idl")
  |> List.sort compare

let test_corpus () =
  let cases = corpus_cases () in
  Alcotest.(check bool) "corpus present" true (List.length cases >= 18);
  List.iter
    (fun case ->
      let src = read_file (Filename.concat corpus_dir case) in
      let reporter = Diag.reporter () in
      ignore (Analysis.Lint.run_source reporter ~filename:case src);
      let expected =
        read_file
          (Filename.concat corpus_dir
             (Filename.chop_suffix case ".idl" ^ ".expected"))
      in
      Alcotest.(check string) case expected (Diag.render_text reporter);
      (* Every corpus file is named after the code it provokes. *)
      let code = String.sub case 0 4 in
      Alcotest.(check bool)
        (case ^ " emits " ^ code)
        true
        (List.exists (fun d -> d.Diag.code = code) (Diag.diagnostics reporter)))
    cases

let test_corpus_codes_known () =
  List.iter
    (fun case ->
      let code = String.sub case 0 4 in
      Alcotest.(check bool) (code ^ " in table") true (Analysis.Codes.is_known code))
    (corpus_cases ())

(* ---------------- recovery ---------------- *)

let test_recovery_multiple () =
  (* Three independent problems in three entities: one run finds all. *)
  let reporter, _ =
    lint_source
      {|
        interface A { void f(in Nope1 x); };
        interface B { void g(in Nope2 y); };
        const long N = 1 / 0;
      |}
  in
  Alcotest.(check (list string)) "all three" [ "E003"; "E003"; "E006" ]
    (codes reporter)

let test_no_reporter_still_raises () =
  (* Without a reporter the historic abort-on-first-error contract holds. *)
  match
    Est.Resolve.spec (Idl.Parser.parse_string "interface A { void f(in Nope x); };")
  with
  | _ -> Alcotest.fail "expected Idl_error"
  | exception Diag.Idl_error d ->
      Alcotest.(check string) "code" "E003" d.Diag.code

let test_dedup () =
  (* A failing struct referenced twice re-resolves and re-fails; the
     reporter keeps one copy. *)
  let reporter, _ =
    lint_source
      {|
        struct S { Nope n; };
        interface I { void f(in S a); void g(in S b); };
      |}
  in
  let e003 = List.filter (fun c -> c = "E003") (codes reporter) in
  Alcotest.(check int) "one E003" 1 (List.length e003)

(* ---------------- rendering and per-code control ---------------- *)

let test_json () =
  let reporter, _ =
    lint_source "interface A { void f(); };\nstruct A { long x; };"
  in
  let json = String.trim (Diag.render_json reporter) in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "array" true
    (String.length json > 1 && json.[0] = '[' && json.[String.length json - 1] = ']');
  Alcotest.(check bool) "code field" true (contains {|"code":"E002"|});
  Alcotest.(check bool) "severity field" true (contains {|"severity":"error"|});
  Alcotest.(check bool) "note carried" true
    (contains "previous declaration is here")

let test_disable_enable () =
  let src = "struct Unused { long x; };\ninterface I { void f(); };" in
  let reporter = Diag.reporter () in
  Diag.set_enabled reporter "W104" false;
  ignore (Analysis.Lint.run_source reporter ~filename:"t.idl" src);
  Alcotest.(check (list string)) "disabled" [] (codes reporter);
  let reporter = Diag.reporter () in
  Diag.set_enabled reporter "W104" false;
  Diag.set_enabled reporter "W104" true;
  ignore (Analysis.Lint.run_source reporter ~filename:"t.idl" src);
  Alcotest.(check (list string)) "re-enabled" [ "W104" ] (codes reporter)

let test_werror () =
  let src = "struct Unused { long x; };\ninterface I { void f(); };" in
  let reporter = Diag.reporter ~werror:true () in
  ignore (Analysis.Lint.run_source reporter ~filename:"t.idl" src);
  Alcotest.(check bool) "warning became fatal" true (Diag.has_errors reporter);
  Alcotest.(check int) "error_count" 1 (Diag.error_count reporter)

(* ---------------- template checker ---------------- *)

let tmpl_codes src =
  let reporter = Diag.reporter () in
  ignore (Analysis.Tmpl_check.check_source reporter ~filename:"t.tmpl" src);
  codes reporter

(* The Fig. 9 template with one variable misspelled: the checker must
   reject it without any IDL input. *)
let fig9_bad =
  {|@foreach interfaceList -map interfaceName CPP::MapClassName
@openfile ${interfaceName}.hh
class ${interfaceName}
{
public:
@foreach methodList -map returnType CPP::MapReturnType
  virtual ${returnType} ${metodName}() = 0;
@end methodList
};
@end interfaceList
|}

let test_fig9_unbound () =
  Alcotest.(check (list string)) "typo found" [ "T202" ] (tmpl_codes fig9_bad)

let test_shipped_templates_clean () =
  List.iter
    (fun path ->
      let reporter = Diag.reporter () in
      ignore
        (Analysis.Tmpl_check.check_source reporter ~filename:path
           (read_file path));
      Alcotest.(check (list string)) (path ^ " clean") [] (codes reporter))
    [ "../templates/fig9_interface.tmpl"; "../templates/markdown_doc.tmpl" ]

let test_builtin_mapping_templates_clean () =
  List.iter
    (fun (m : Mappings.Mapping.t) ->
      List.iter
        (fun tname ->
          match Mappings.Mapping.template m tname with
          | None -> ()
          | Some src ->
              let reporter = Diag.reporter () in
              let filename = m.Mappings.Mapping.name ^ "/" ^ tname in
              ignore (Analysis.Tmpl_check.check_source reporter ~filename src);
              Alcotest.(check (list string)) (filename ^ " clean") []
                (codes reporter))
        (Mappings.Mapping.template_names m))
    Mappings.Registry.all

let test_template_codes () =
  Alcotest.(check (list string)) "unbalanced" [ "T201" ]
    (tmpl_codes "@foreach interfaceList\nx\n");
  Alcotest.(check (list string)) "unknown map fn" [ "T203" ]
    (tmpl_codes
       "@foreach interfaceList -map interfaceName No::SuchFn\n${interfaceName}\n@end interfaceList\n");
  Alcotest.(check (list string)) "inline unknown map fn" [ "T203" ]
    (tmpl_codes
       "@foreach interfaceList\n${interfaceName:No::SuchFn}\n@end interfaceList\n");
  (* One bad group: a single T204, no cascade from its body. *)
  Alcotest.(check (list string)) "unknown group, no cascade" [ "T204" ]
    (tmpl_codes
       "@foreach bogusList\n${whatever}\n@foreach alsoBogus\n${x}\n@end alsoBogus\n@end bogusList\n");
  Alcotest.(check (list string)) "openfile unbound" [ "T205" ]
    (tmpl_codes "@openfile ${nope}.hh\n");
  (* @if condition variables are checked too. *)
  Alcotest.(check (list string)) "if cond unbound" [ "T202" ]
    (tmpl_codes "@if ${nope} == \"x\"\ny\n@fi\n");
  (* Loop bindings and outward resolution are understood. *)
  Alcotest.(check (list string)) "loop bindings ok" []
    (tmpl_codes
       "@foreach interfaceList\n${index}/${count} ${fileBase} ${ifMore}\n@end interfaceList\n")

(* ---------------- interface evolution ---------------- *)

let est src = Core.Compiler.est_of_string ~filename:"t.idl" src

let diff old_src new_src =
  let reporter = Diag.reporter () in
  Analysis.Evolve.diff_roots reporter ~file:"t.idl" ~old_root:(est old_src)
    (est new_src);
  codes reporter

let test_evolution () =
  let v1 =
    "interface Account { void deposit(in long amount); long balance(); };"
  in
  Alcotest.(check (list string)) "unchanged is clean" [] (diff v1 v1);
  Alcotest.(check (list string)) "removed operation" [ "V301" ]
    (diff v1 "interface Account { void deposit(in long amount); };");
  Alcotest.(check (list string)) "changed param type" [ "V302" ]
    (diff v1
       "interface Account { void deposit(in double amount); long balance(); };");
  Alcotest.(check (list string)) "changed param mode" [ "V302" ]
    (diff v1
       "interface Account { void deposit(inout long amount); long balance(); };");
  Alcotest.(check (list string)) "reordered operations" [ "V304" ]
    (diff v1 "interface Account { long balance(); void deposit(in long amount); };");
  Alcotest.(check (list string)) "added operation is benign" [ "W310" ]
    (diff v1
       "interface Account { void deposit(in long amount); long balance(); \
        void close(); };");
  Alcotest.(check (list string)) "removed interface" [ "V301" ] (diff v1 "");
  Alcotest.(check (list string)) "new interface is benign" [ "W310" ]
    (diff "" v1)

let test_evolution_repo_id () =
  let v1 = "interface I { void f(); };" in
  let v2 = "#pragma prefix \"acme.example\"\ninterface I { void f(); };" in
  Alcotest.(check (list string)) "prefix change breaks identity" [ "V303" ]
    (diff v1 v2)

let test_evolution_oneway_and_raises () =
  let v1 = "exception E {}; interface I { void f() raises (E); };" in
  Alcotest.(check (list string)) "dropped raises" [ "V302" ]
    (diff v1 "exception E {}; interface I { void f(); };");
  let v3 = "interface J { void g(in long x); };" in
  Alcotest.(check (list string)) "became oneway" [ "V302" ]
    (diff v3 "interface J { oneway void g(in long x); };")

let test_evolution_attributes () =
  let v1 = "interface I { attribute long a; };" in
  Alcotest.(check (list string)) "attr type change" [ "V302" ]
    (diff v1 "interface I { attribute double a; };");
  Alcotest.(check (list string)) "attr became readonly" [ "V302" ]
    (diff v1 "interface I { readonly attribute long a; };");
  Alcotest.(check (list string)) "attr removed" [ "V301" ]
    (diff v1 "interface I { void pad(); };"
    |> List.filter (fun c -> c = "V301"))

(* ---------------- the code table ---------------- *)

let test_codes_table () =
  List.iter
    (fun (i : Analysis.Codes.info) ->
      Alcotest.(check bool) (i.code ^ " explained") true
        (Analysis.Codes.explain i.code <> None))
    Analysis.Codes.all;
  Alcotest.(check (option string)) "unknown" None (Analysis.Codes.explain "E999");
  (* The explain text for E010 mentions the pragma that causes it. *)
  match Analysis.Codes.explain "E010" with
  | None -> Alcotest.fail "E010 missing"
  | Some text ->
      let contains needle =
        let n = String.length needle and h = String.length text in
        let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions pragma prefix" true (contains "pragma")

let test_reserved_tables () =
  List.iter
    (fun (m : Mappings.Mapping.t) ->
      Alcotest.(check bool)
        (m.Mappings.Mapping.name ^ " has reserved words")
        true
        (m.Mappings.Mapping.reserved <> []))
    Mappings.Registry.all;
  (* Keyword collisions are mapping-aware: "object" is reserved in OCaml
     but not in C++. *)
  let find name =
    match Mappings.Registry.find name with
    | Some m -> m
    | None -> Alcotest.fail ("mapping " ^ name)
  in
  Alcotest.(check bool) "ocaml flags object" true
    (Mappings.Mapping.is_reserved (find "ocaml") "object");
  Alcotest.(check bool) "cpp does not flag object" false
    (Mappings.Mapping.is_reserved (find "heidi-cpp") "object");
  let reporter = Diag.reporter () in
  ignore
    (Analysis.Lint.run_source
       ~mappings:[ find "heidi-cpp" ]
       reporter ~filename:"t.idl"
       "interface I { void f(in long object); };");
  Alcotest.(check (list string)) "cpp-only lint is clean" [] (codes reporter)

let () =
  Alcotest.run "lint"
    [
      ( "corpus",
        [
          Alcotest.test_case "goldens" `Quick test_corpus;
          Alcotest.test_case "codes known" `Quick test_corpus_codes_known;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "multiple diagnostics" `Quick test_recovery_multiple;
          Alcotest.test_case "no reporter raises" `Quick test_no_reporter_still_raises;
          Alcotest.test_case "cascade dedup" `Quick test_dedup;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "json" `Quick test_json;
          Alcotest.test_case "disable/enable" `Quick test_disable_enable;
          Alcotest.test_case "werror" `Quick test_werror;
        ] );
      ( "templates",
        [
          Alcotest.test_case "fig9 unbound var" `Quick test_fig9_unbound;
          Alcotest.test_case "shipped templates clean" `Quick
            test_shipped_templates_clean;
          Alcotest.test_case "built-in mapping templates clean" `Quick
            test_builtin_mapping_templates_clean;
          Alcotest.test_case "T201-T205" `Quick test_template_codes;
        ] );
      ( "evolution",
        [
          Alcotest.test_case "operations" `Quick test_evolution;
          Alcotest.test_case "repository id" `Quick test_evolution_repo_id;
          Alcotest.test_case "oneway and raises" `Quick
            test_evolution_oneway_and_raises;
          Alcotest.test_case "attributes" `Quick test_evolution_attributes;
        ] );
      ( "codes",
        [
          Alcotest.test_case "table" `Quick test_codes_table;
          Alcotest.test_case "reserved words" `Quick test_reserved_tables;
        ] );
    ]
