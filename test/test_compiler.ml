(* Compiler-driver tests (paper Fig. 6): the two-stage pipeline, custom
   templates, output merging, and file writing. *)

let heidi = Option.get (Mappings.Registry.find "heidi-cpp")

let test_stage_separation () =
  (* Stage 1 alone produces an EST; stage 2 alone consumes it. The EST
     can even cross a serialization boundary (the paper's stage 1 emitted
     a program that rebuilt the EST in the code generator's process). *)
  let est = Core.Compiler.est_of_string ~file_base:"A" "interface A { void f(); };" in
  let text = Est.Dump.to_text est in
  let rebuilt = Est.Dump.of_text text in
  let result =
    Core.Compiler.generate ~maps:heidi.Mappings.Mapping.maps
      ~templates:heidi.Mappings.Mapping.templates rebuilt
  in
  Tutil.check_contains ~what:"generated from rebuilt EST"
    (List.assoc "A.hh" result.Core.Compiler.files)
    "class HdA"

let test_file_base_defaults () =
  let est = Core.Compiler.est_of_string ~filename:"dir/Thing.idl" "enum E { a };" in
  Alcotest.(check (option string)) "fileBase from filename" (Some "Thing")
    (Est.Node.prop est "fileBase");
  let est2 = Core.Compiler.est_of_string "enum E { a };" in
  Alcotest.(check (option string)) "fallback" (Some "out") (Est.Node.prop est2 "fileBase")

let test_custom_template () =
  (* The paper's headline: change the mapping by writing a template, not
     by touching the compiler. A six-line custom template produces a
     completely different output format from the same front-end. *)
  let tmpl =
    {|@foreach interfaceList
${repoId} has:
@foreach methodList -ifMore ', '
  operation ${methodName}
@end methodList
@end interfaceList|}
  in
  let est =
    Core.Compiler.est_of_string ~file_base:"x"
      "interface I { void a(); void b(); };"
  in
  let result = Core.Compiler.generate ~templates:[ ("inventory", tmpl) ] est in
  Alcotest.(check string) "custom output"
    "IDL:I:1.0 has:\n  operation a\n  operation b\n"
    result.Core.Compiler.stdout

let test_output_merging () =
  (* Two templates appending to the same @openfile target. *)
  let t1 = "@openfile out.txt\nfirst\n" in
  let t2 = "@openfile out.txt\nsecond\n" in
  let est = Core.Compiler.est_of_string "enum E { a };" in
  let result = Core.Compiler.generate ~templates:[ ("t1", t1); ("t2", t2) ] est in
  Alcotest.(check (list (pair string string)))
    "merged" [ ("out.txt", "first\nsecond\n") ] result.Core.Compiler.files

let test_write_result () =
  let dir = Filename.temp_file "idlc" "" in
  Sys.remove dir;
  let result =
    Core.Compiler.compile_string ~file_base:"W" ~mapping:heidi
      "interface W { void go(); };"
  in
  let written = Core.Compiler.write_result ~dir result in
  Alcotest.(check int) "three files" 3 (List.length written);
  List.iter
    (fun path ->
      Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path))
    written;
  let ic = open_in (Filename.concat dir "W.hh") in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Tutil.check_contains ~what:"content" content "class HdW";
  List.iter Sys.remove written;
  Sys.rmdir dir

let test_errors_propagate () =
  (match Core.Compiler.compile_string ~mapping:heidi "interface {" with
  | exception Idl.Diag.Idl_error _ -> ()
  | _ -> Alcotest.fail "syntax error not raised");
  (match Core.Compiler.compile_string ~mapping:heidi "interface I : Nope { };" with
  | exception Idl.Diag.Idl_error _ -> ()
  | _ -> Alcotest.fail "semantic error not raised");
  let est = Core.Compiler.est_of_string "enum E { a };" in
  match Core.Compiler.generate ~templates:[ ("bad", "${nope}") ] est with
  | exception Template.Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "template error not raised"

(* Every built-in mapping compiles the kitchen-sink IDL without error —
   a smoke test over the whole template surface. *)
let kitchen_sink =
  {|module Zoo {
      enum Kind { lion, tiger };
      const long MAX = 100;
      typedef sequence<Kind> Kinds;
      typedef string Label;
      struct Cage { Label label; long capacity; boolean open_; };
      exception Full { long capacity; };
      interface Animal { readonly attribute Kind kind; void feed(in long amount); };
      interface Keeper : Animal {
        long assign(in Animal beast, in Cage cage) raises (Full);
        Kinds kinds();
        oneway void wave(in string greeting);
        void nap(in long minutes = 10);
      };
    };|}

let test_all_mappings_compile_kitchen_sink () =
  List.iter
    (fun (m : Mappings.Mapping.t) ->
      let result =
        Core.Compiler.compile_string ~file_base:"zoo" ~mapping:m kitchen_sink
      in
      Alcotest.(check bool)
        (m.Mappings.Mapping.name ^ " produced output")
        true
        (result.Core.Compiler.files <> []))
    Mappings.Registry.all

(* Under `dune runtest` the cwd is _build/default/test; under a direct
   `dune exec` it is the project root. *)
let read_file path =
  let path = if Sys.file_exists path then path else Filename.basename (Filename.dirname path) ^ "/" ^ Filename.basename path in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let all_maps =
  List.fold_left
    (fun acc (m : Mappings.Mapping.t) ->
      Template.Maps.union acc m.Mappings.Mapping.maps)
    (Template.Maps.create ()) Mappings.Registry.all

(* The template files shipped under templates/ must keep working as
   idlc --template inputs. *)
let test_shipped_fig9_template () =
  let src = read_file "../templates/fig9_interface.tmpl" in
  let est = Core.Compiler.est_of_string ~file_base:"A" kitchen_sink in
  let result = Core.Compiler.generate ~maps:all_maps ~templates:[ ("fig9", src) ] est in
  let keeper = List.assoc "HdKeeper.hh" result.Core.Compiler.files in
  (* The Hd naming convention strips only the Heidi scope, so Zoo::Animal
     becomes HdZooAnimal (the figure's template was written for module
     Heidi, where the scope disappears). *)
  Tutil.check_contains ~what:"inheritance" keeper "virtual public HdZooAnimal";
  Tutil.check_contains ~what:"default param" keeper "long minutes = 10";
  let animal = List.assoc "HdAnimal.hh" result.Core.Compiler.files in
  Tutil.check_contains ~what:"getter (figure style)" animal
    "virtual HdZooKind GetKind() const = 0;"

let test_shipped_markdown_template () =
  let src = read_file "../templates/markdown_doc.tmpl" in
  let est = Core.Compiler.est_of_string ~file_base:"zoo" kitchen_sink in
  let result = Core.Compiler.generate ~maps:all_maps ~templates:[ ("md", src) ] est in
  let md = List.assoc "zoo.md" result.Core.Compiler.files in
  Tutil.check_contains ~what:"interface heading" md "## interface `Zoo::Keeper`";
  Tutil.check_contains ~what:"repo id" md "`IDL:Zoo/Keeper:1.0`";
  Tutil.check_contains ~what:"oneway note" md "*oneway*";
  Tutil.check_contains ~what:"default note" md "default `int:10`";
  Tutil.check_contains ~what:"raises" md "Raises `IDL:Zoo/Full:1.0`"

let () =
  Alcotest.run "compiler"
    [
      ( "pipeline",
        [
          Alcotest.test_case "stage separation (Fig. 6)" `Quick test_stage_separation;
          Alcotest.test_case "fileBase defaults" `Quick test_file_base_defaults;
          Alcotest.test_case "custom template" `Quick test_custom_template;
          Alcotest.test_case "output merging" `Quick test_output_merging;
          Alcotest.test_case "write_result" `Quick test_write_result;
          Alcotest.test_case "errors propagate" `Quick test_errors_propagate;
          Alcotest.test_case "kitchen sink through all mappings" `Quick
            test_all_mappings_compile_kitchen_sink;
          Alcotest.test_case "shipped Fig. 9 template" `Quick test_shipped_fig9_template;
          Alcotest.test_case "shipped markdown template" `Quick
            test_shipped_markdown_template;
        ] );
    ]
