(* Multicore dispatch: the guarantees the domain-per-worker pool rests
   on, each pinned where it can actually break.

   - Obs conservation: N domains hammer one Metrics registry while the
     main thread snapshots concurrently — the lock-free registries must
     lose no update and tear no float.
   - Trace ids: per-domain DLS generators must never clone a stream —
     ids stay unique across domains.
   - Pool overlap: with domain workers, >= 2 jobs must be *executing*
     simultaneously (each job waits to observe the other in flight —
     a rendezvous that deadlocks if execution is serialized).
   - Checker keying: held-rank stacks are keyed by (domain, thread);
     identical Thread.ids on different domains must not merge stacks
     into phantom Rank_violations.
   - Cancel-on-stop: an ORB shutdown with requests queued-but-not-run
     must answer them with a system-error reply, not silent discard. *)

let n_domains = 4

(* ---------------- Obs conservation under domain hammering ------------ *)

let test_metrics_conservation () =
  let m = Obs.Metrics.create () in
  let per_domain = 20_000 in
  let stop_snapshots = Atomic.make false in
  (* Concurrent snapshot reader: every intermediate view must already
     be internally consistent (no negative counts, no torn sums). *)
  let snapshotter =
    Locked.spawn "test.snapshotter" (fun () ->
        while not (Atomic.get stop_snapshots) do
          let s = Obs.Metrics.snapshot m in
          List.iter
            (fun (h : Obs.Metrics.hist_view) ->
              assert (h.total >= 0);
              assert (Float.is_finite h.sum_s && h.sum_s >= 0.))
            s.Obs.Metrics.latencies;
          Thread.yield ()
        done)
  in
  let workers =
    List.init n_domains (fun d ->
        Locked.spawn_domain "test.hammer" (fun () ->
            for i = 1 to per_domain do
              Obs.Metrics.observe m ~name:"lat" 0.001;
              Obs.Metrics.incr m ~name:"evt";
              Obs.Metrics.add_bytes m ~endpoint:"ep" ~dir:`In 3;
              if i land 1023 = 0 then
                Obs.Metrics.set_gauge m ~name:"g" (float_of_int d)
            done))
  in
  List.iter Domain.join workers;
  Atomic.set stop_snapshots true;
  Thread.join snapshotter;
  let s = Obs.Metrics.snapshot m in
  let expected = n_domains * per_domain in
  (match s.Obs.Metrics.latencies with
  | [ h ] ->
      Alcotest.(check int) "histogram total conserved" expected h.total;
      Alcotest.(check int)
        "bucket counts sum to total" expected
        (List.fold_left (fun a (_, c) -> a + c) 0 h.buckets);
      (* sum_s accumulates 0.001 per observation via compare-and-set:
         no update may be lost, only float rounding may drift. *)
      let want = float_of_int expected *. 0.001 in
      Alcotest.(check bool)
        (Printf.sprintf "sum_s conserved (%.6f vs %.6f)" h.sum_s want)
        true
        (Float.abs (h.sum_s -. want) < want *. 1e-6)
  | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l));
  Alcotest.(check (list (pair string int)))
    "counter conserved"
    [ ("evt", expected) ]
    s.Obs.Metrics.counters;
  match s.Obs.Metrics.endpoints with
  | [ b ] ->
      Alcotest.(check int) "bytes conserved" (3 * expected) b.bytes_in;
      Alcotest.(check int) "reads conserved" expected b.reads
  | l -> Alcotest.failf "expected 1 endpoint, got %d" (List.length l)

(* ---------------- trace ids unique across domains ------------------- *)

let test_trace_ids_unique_across_domains () =
  let per_domain = 5_000 in
  let results = Array.make n_domains [] in
  let workers =
    List.init n_domains (fun d ->
        Locked.spawn_domain "test.ids" (fun () ->
            let mine = ref [] in
            for _ = 1 to per_domain do
              mine := Obs.Trace.new_trace_id () :: !mine
            done;
            results.(d) <- !mine))
  in
  List.iter Domain.join workers;
  let all = Array.to_list results |> List.concat in
  Alcotest.(check int) "every domain produced its ids"
    (n_domains * per_domain) (List.length all);
  Alcotest.(check int) "no id drawn twice across domains"
    (List.length all)
    (List.length (List.sort_uniq compare all))

(* ---------------- pool: parallel execution rendezvous --------------- *)

let test_pool_jobs_overlap () =
  let pool =
    Orb.Pool.create
      { Orb.Pool.default_config with workers = 2; queue_capacity = 8 }
  in
  let arrived = Atomic.make 0 in
  let saw_both = Atomic.make 0 in
  let job () =
    Atomic.incr arrived;
    (* Rendezvous: wait (bounded) until the other job has also started.
       [arrived] only grows, so if the partner shows up while this job
       is mid-run, BOTH observe 2. Serialized execution can score at
       most 1: the first job spins out its deadline alone and is done
       before the second ever increments. *)
    let deadline = Unix.gettimeofday () +. 5.0 in
    while Atomic.get arrived < 2 && Unix.gettimeofday () < deadline do
      Domain.cpu_relax ()
    done;
    if Atomic.get arrived >= 2 then Atomic.incr saw_both
  in
  (match Orb.Pool.submit pool job with
  | `Accepted -> ()
  | `Rejected r -> Alcotest.failf "job 1 rejected: %s" r
  | `Expired -> Alcotest.fail "job 1 unexpectedly expired");
  (match Orb.Pool.submit pool job with
  | `Accepted -> ()
  | `Rejected r -> Alcotest.failf "job 2 rejected: %s" r
  | `Expired -> Alcotest.fail "job 2 unexpectedly expired");
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (Orb.Pool.stats pool).Orb.Pool.completed < 2
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.005
  done;
  Alcotest.(check int) "both jobs completed" 2
    (Orb.Pool.stats pool).Orb.Pool.completed;
  Alcotest.(check int) "both jobs observed each other executing" 2
    (Atomic.get saw_both);
  ignore (Orb.Pool.stop pool)

(* ---------------- checker: (domain, thread) keying ------------------ *)

let with_checking f =
  let was = Locked.checking () in
  Locked.set_checking true;
  Locked.reset_violations ();
  Fun.protect
    ~finally:(fun () ->
      Locked.reset_violations ();
      Locked.set_checking was)
    f

let test_checker_no_phantom_across_domains () =
  (* Each domain runs the same descending acquisition pattern in a
     tight loop. Under per-Thread.id keying, thread ids recycle across
     domains, so two domains' stacks could interleave into a phantom
     climb; (domain, thread) keying must keep them disjoint. *)
  with_checking (fun () ->
      let outer = Locked.create ~name:"mc.outer" ~rank:Locked.Rank.pool in
      let workers =
        List.init n_domains (fun _ ->
            Locked.spawn_domain "test.ranked" (fun () ->
                let inner =
                  Locked.create ~name:"mc.inner" ~rank:Locked.Rank.metrics
                in
                for _ = 1 to 2_000 do
                  Locked.with_lock outer (fun () ->
                      Locked.with_lock inner (fun () -> ()))
                done))
      in
      List.iter Domain.join workers;
      Alcotest.(check (list string))
        "no phantom violations across domains" [] (Locked.violations ());
      (* The checker still catches a real inversion on a worker domain. *)
      let tripped = Atomic.make false in
      let inner = Locked.create ~name:"mc.trip" ~rank:Locked.Rank.metrics in
      Domain.join
        (Locked.spawn_domain "test.inversion" (fun () ->
             try Locked.with_lock inner (fun () ->
                     Locked.with_lock outer (fun () -> ()))
             with Locked.Rank_violation _ -> Atomic.set tripped true));
      Alcotest.(check bool) "real inversion still trips on a domain" true
        (Atomic.get tripped))

(* ---------------- ORB: stop answers queued requests ----------------- *)

let slow_skeleton gate_s =
  Orb.Skeleton.create ~type_id:"IDL:Test/Slow:1.0"
    [
      ( "slow",
        fun _ results ->
          Thread.delay gate_s;
          results.Wire.Codec.put_bool true );
    ]

let test_shutdown_answers_queued_requests () =
  (* 1 worker, deep queue: the first call occupies the worker, the rest
     sit queued-but-not-run. Shutting the server down mid-flight must
     answer every queued request with a system-error reply naming the
     drop — before the fix they were silently discarded and the client
     sat out its call deadline. *)
  Orb.Transport.mem_reset ();
  let server =
    Orb.create ~transport:"mem" ~host:"local"
      ~server_policy:
        {
          Orb.default_server_policy with
          pool =
            Some
              {
                Orb.Pool.default_config with
                workers = 1;
                queue_capacity = 8;
              };
        }
      ()
  in
  Orb.start server;
  let target = Orb.export server (slow_skeleton 0.6) in
  let client = Orb.create ~transport:"mem" ~host:"local" ~retry:Orb.Retry.none () in
  let outcomes = Array.make 3 `Pending in
  let threads =
    List.init 3 (fun i ->
        Locked.spawn "test.caller" (fun () ->
            (* Caller 0 occupies the worker; 1 and 2 queue behind it. *)
            if i > 0 then Thread.delay 0.1;
            outcomes.(i) <-
              (match
                 Orb.invoke client target ~op:"slow" ~timeout:20.0 (fun _ -> ())
               with
              | Some _ -> `Replied
              | None -> `NoReply
              | exception Orb.System_exception msg -> `System_error msg
              | exception e -> `Other (Printexc.to_string e))))
  in
  Thread.delay 0.25;
  let t0 = Unix.gettimeofday () in
  Orb.shutdown server;
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "queued callers answered promptly (%.2fs)" elapsed)
    true (elapsed < 5.0);
  (* Callers 1 and 2 were queued when the pool stopped: each must have
     received the cancel reply, not a timeout or a bare hangup. *)
  List.iter
    (fun i ->
      match outcomes.(i) with
      | `System_error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "caller %d told about the drop (%s)" i msg)
            true
            (Tutil.contains msg "dropped" || Tutil.contains msg "shutting down")
      | `Replied -> Alcotest.failf "caller %d got a reply after the drop" i
      | `NoReply -> Alcotest.failf "caller %d got a oneway-style no-reply" i
      | `Other e -> Alcotest.failf "caller %d failed oddly: %s" i e
      | `Pending -> Alcotest.failf "caller %d never finished" i)
    [ 1; 2 ];
  Orb.shutdown client

let () =
  Alcotest.run "multicore"
    [
      ( "obs",
        [
          Alcotest.test_case "metrics conserved under domains" `Quick
            test_metrics_conservation;
          Alcotest.test_case "trace ids unique across domains" `Quick
            test_trace_ids_unique_across_domains;
        ] );
      ( "pool",
        [
          Alcotest.test_case "jobs execute in parallel" `Quick
            test_pool_jobs_overlap;
          Alcotest.test_case "shutdown answers queued requests" `Quick
            test_shutdown_answers_queued_requests;
        ] );
      ( "checker",
        [
          Alcotest.test_case "(domain, thread) keying: no phantoms" `Quick
            test_checker_no_phantom_across_domains;
        ] );
    ]
