(* Parser unit tests plus the pretty-printer round-trip property:
   parse (pretty ast) is structurally equal to ast. *)

module A = Idl.Ast

let parse = Idl.Parser.parse_string ?filename:None

let expect_error name src =
  match parse src with
  | exception Idl.Diag.Idl_error _ -> ()
  | _ -> Alcotest.failf "%s: expected a syntax error" name

(* ---------------- unit tests ---------------- *)

let test_empty () = Alcotest.(check int) "empty" 0 (List.length (parse ""))

let test_module_nesting () =
  match parse "module M { module N { enum E { a }; }; };" with
  | [ A.D_module ("M", [ A.D_module ("N", [ A.D_enum e ], _) ], _) ] ->
      Alcotest.(check (list string)) "members" [ "a" ] e.A.en_members
  | _ -> Alcotest.fail "unexpected shape"

let test_interface_full () =
  let src =
    {|interface I : A, ::B::C {
        typedef long mylong;
        const short K = 3;
        exception Broke { string why; };
        readonly attribute float temp;
        attribute long a, b;
        oneway void poke(in long x);
        long sum(in long a, inout long b, out long c) raises (Broke);
        void def(in long x, in long y = 2 + 3);
        void cp(incopy I other);
      };|}
  in
  match parse src with
  | [ A.D_interface i ] ->
      Alcotest.(check (list string))
        "inherits" [ "A"; "::B::C" ]
        (List.map A.scoped_name_to_string i.A.if_inherits);
      Alcotest.(check int) "exports" 9 (List.length i.A.if_exports)
  | _ -> Alcotest.fail "unexpected shape"

let test_types () =
  let src =
    "interface T { void f(in unsigned long long a, in sequence<sequence<long>, 4> b, \
     in string<16> c, in long long d, in any e); };"
  in
  match parse src with
  | [ A.D_interface { A.if_exports = [ A.Ex_op op ]; _ } ] ->
      let types = List.map (fun p -> p.A.p_type) op.A.op_params in
      Alcotest.(check bool) "types" true
        (types
        = [
            A.Unsigned_long_long;
            A.Sequence (A.Sequence (A.Long, None), Some 4);
            A.String (Some 16);
            A.Long_long;
            A.Any;
          ])
  | _ -> Alcotest.fail "unexpected shape"

let test_union () =
  let src =
    {|union U switch (long) {
        case 1: case 2: long a;
        case 3: string b;
        default: float c;
      };|}
  in
  match parse src with
  | [ A.D_union u ] ->
      Alcotest.(check int) "cases" 3 (List.length u.A.un_cases);
      Alcotest.(check int) "labels of first" 2
        (List.length (List.hd u.A.un_cases).A.uc_labels)
  | _ -> Alcotest.fail "unexpected shape"

let test_const_expr_precedence () =
  (* 1 + 2 * 3 must parse as 1 + (2 * 3). *)
  match parse "const long K = 1 + 2 * 3;" with
  | [ A.D_const { A.cn_value = A.Binary (A.Add, A.Int_lit 1L, A.Binary (A.Mul, A.Int_lit 2L, A.Int_lit 3L)); _ } ] ->
      ()
  | _ -> Alcotest.fail "precedence wrong"

let test_const_expr_shift_or () =
  match parse "const long K = 1 << 2 | 3 & 4;" with
  | [ A.D_const { A.cn_value = A.Binary (A.Or, A.Binary (A.Shift_left, _, _), A.Binary (A.And, _, _)); _ } ] ->
      ()
  | _ -> Alcotest.fail "precedence wrong"

let test_default_param_constraints () =
  expect_error "default then plain" "interface I { void f(in long a = 1, in long b); };";
  expect_error "default on out" "interface I { void f(out long a = 1); };";
  ignore (parse "interface I { void f(in long a, in long b = 1, in long c = 2); };")

let test_oneway_constraints () =
  expect_error "oneway non-void" "interface I { oneway long f(); };";
  ignore (parse "interface I { oneway void f(in long a); };")

let test_pragma_prefix () =
  (match parse "#pragma prefix \"nec.com\"\nenum E { a };" with
  | [ A.D_pragma_prefix ("nec.com", _); A.D_enum _ ] -> ()
  | _ -> Alcotest.fail "pragma not parsed");
  (* Other pragmas and preprocessor lines are skipped. *)
  match parse "#pragma version E 2.0\n#include \"x.idl\"\nenum E { a };" with
  | [ A.D_enum _ ] -> ()
  | _ -> Alcotest.fail "other preprocessor lines should be skipped"

let test_pragma_roundtrip () =
  let spec = parse "#pragma prefix \"nec.com\"\nenum E { a };" in
  let reparsed = parse (Idl.Pretty.to_string spec) in
  Alcotest.(check bool) "roundtrip" true (A.equal_spec spec reparsed)

let test_forward_decl () =
  match parse "interface F; interface F { void f(); };" with
  | [ A.D_forward ("F", _); A.D_interface _ ] -> ()
  | _ -> Alcotest.fail "unexpected shape"

let test_syntax_errors () =
  expect_error "missing semi" "interface I { void f() }";
  expect_error "missing brace" "module M { interface I;";
  expect_error "bad inheritance" "interface I : { };";
  expect_error "unsigned float" "interface I { void f(in unsigned float x); };";
  expect_error "trailing garbage" "enum E { a }; junk";
  expect_error "empty enum" "enum E { };";
  expect_error "union without labels" "union U switch (long) { long a; };"

(* ---------------- round-trip property ---------------- *)

let gen_ident =
  QCheck.Gen.(
    let* base = oneofl [ "a"; "b"; "foo"; "bar"; "val1"; "x_y"; "Zed" ] in
    let* n = int_bound 99 in
    return (Printf.sprintf "%s%d" base n))

let gen_scoped_name =
  QCheck.Gen.(
    let* absolute = bool in
    let* parts = list_size (int_range 1 3) gen_ident in
    return (A.scoped ~absolute parts))

let rec gen_type_spec depth =
  QCheck.Gen.(
    if depth = 0 then
      oneof
        [
          oneofl
            [
              A.Short; A.Long; A.Long_long; A.Unsigned_short; A.Unsigned_long;
              A.Unsigned_long_long; A.Float; A.Double; A.Boolean; A.Char;
              A.Octet; A.Any; A.String None;
            ];
          map (fun n -> A.String (Some (1 + abs n mod 100))) small_int;
          map (fun sn -> A.Named sn) gen_scoped_name;
        ]
    else
      frequency
        [
          (3, gen_type_spec 0);
          ( 1,
            let* elem = gen_type_spec (depth - 1) in
            let* bound = opt (map (fun n -> 1 + (abs n mod 100)) small_int) in
            return (A.Sequence (elem, bound)) );
        ])

(* Literal-only constant expressions re-parse exactly; negative numbers
   would come back as Unary(Neg, _), so magnitudes are kept positive and
   negation is expressed structurally. *)
let rec gen_const_expr depth =
  QCheck.Gen.(
    let leaf =
      oneof
        [
          map (fun n -> A.Int_lit (Int64.of_int (abs n))) small_int;
          map (fun f -> A.Float_lit (Float.abs f)) (float_bound_inclusive 1e6);
          map (fun b -> A.Bool_lit b) bool;
          map (fun c -> A.Char_lit c) (char_range 'a' 'z');
          map (fun s -> A.String_lit s) (string_size ~gen:(char_range 'a' 'z') (int_bound 8));
          map (fun sn -> A.Name_ref sn) gen_scoped_name;
        ]
    in
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          ( 1,
            let* op = oneofl [ A.Neg; A.Pos; A.Bit_not ] in
            let* e = gen_const_expr (depth - 1) in
            return (A.Unary (op, e)) );
          ( 1,
            let* op =
              oneofl
                [ A.Or; A.Xor; A.And; A.Shift_left; A.Shift_right; A.Add;
                  A.Sub; A.Mul; A.Div; A.Mod ]
            in
            let* a = gen_const_expr (depth - 1) in
            let* b = gen_const_expr (depth - 1) in
            return (A.Binary (op, a, b)) );
        ])

let gen_param =
  QCheck.Gen.(
    let* mode = oneofl [ A.In; A.Out; A.Inout; A.Incopy ] in
    let* ty = gen_type_spec 1 in
    let* name = gen_ident in
    return { A.p_mode = mode; p_type = ty; p_name = name; p_default = None; p_loc = Idl.Loc.dummy })

let gen_operation =
  QCheck.Gen.(
    let* ret = oneofl [ A.Void; A.Long; A.String None ] in
    let* name = gen_ident in
    let* params = list_size (int_bound 4) gen_param in
    (* An optional default on the last in-mode parameter keeps the
       parser's trailing-defaults rule satisfied. *)
    let* dflt = opt (gen_const_expr 1) in
    let params =
      match (List.rev params, dflt) with
      | last :: rest, Some d
        when last.A.p_mode = A.In || last.A.p_mode = A.Incopy ->
          List.rev ({ last with A.p_default = Some d } :: rest)
      | _ -> params
    in
    let* raises = list_size (int_bound 2) gen_scoped_name in
    return
      {
        A.op_oneway = false;
        op_return = ret;
        op_name = name;
        op_params = params;
        op_raises = raises;
        op_loc = Idl.Loc.dummy;
      })

let gen_export =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun op -> A.Ex_op op) gen_operation);
        ( 1,
          let* ro = bool in
          let* ty = gen_type_spec 1 in
          let* names = list_size (int_range 1 2) gen_ident in
          return
            (A.Ex_attr
               { A.at_readonly = ro; at_type = ty; at_names = names; at_loc = Idl.Loc.dummy })
        );
        ( 1,
          let* ty = gen_type_spec 1 in
          let* names = list_size (int_range 1 2) gen_ident in
          return
            (A.Ex_typedef { A.td_type = ty; td_names = names; td_loc = Idl.Loc.dummy }) );
      ])

let rec gen_definition depth =
  QCheck.Gen.(
    let module_case =
      (* Constructed only when depth > 0 to avoid unbounded recursion at
         generator-construction time. *)
      if depth > 0 then
        [
          ( 1,
            let* name = gen_ident in
            let* defs = list_size (int_range 1 3) (gen_definition (depth - 1)) in
            return (A.D_module (name, defs, Idl.Loc.dummy)) );
        ]
      else []
    in
    frequency
      (module_case
      @ [
        ( 3,
          let* name = gen_ident in
          let* inherits = list_size (int_bound 2) gen_scoped_name in
          let* exports = list_size (int_bound 5) gen_export in
          return
            (A.D_interface
               { A.if_name = name; if_inherits = inherits; if_exports = exports;
                 if_loc = Idl.Loc.dummy }) );
        ( 1,
          let* name = gen_ident in
          let* members = list_size (int_range 1 4) gen_ident in
          return (A.D_enum { A.en_name = name; en_members = members; en_loc = Idl.Loc.dummy }) );
        ( 1,
          let* name = gen_ident in
          let* fields =
            list_size (int_range 1 3)
              (let* ty = gen_type_spec 1 in
               let* fname = gen_ident in
               return { A.sm_type = ty; sm_names = [ fname ]; sm_loc = Idl.Loc.dummy })
          in
          return (A.D_struct { A.st_name = name; st_members = fields; st_loc = Idl.Loc.dummy }) );
        ( 1,
          let* ty = oneofl [ A.Long; A.Boolean; A.String None; A.Double; A.Char ] in
          let* name = gen_ident in
          let* value = gen_const_expr 2 in
          return
            (A.D_const { A.cn_type = ty; cn_name = name; cn_value = value; cn_loc = Idl.Loc.dummy })
        );
      ]))

let gen_spec = QCheck.Gen.(list_size (int_range 1 4) (gen_definition 2))

let roundtrip_prop =
  QCheck.Test.make ~count:300 ~name:"pretty |> parse round-trips"
    (QCheck.make ~print:(fun spec -> Idl.Pretty.to_string spec) gen_spec)
    (fun spec ->
      let printed = Idl.Pretty.to_string spec in
      let reparsed = Idl.Parser.parse_string printed in
      A.equal_spec spec reparsed)

let () =
  Alcotest.run "parser"
    [
      ( "unit",
        [
          Alcotest.test_case "empty input" `Quick test_empty;
          Alcotest.test_case "module nesting" `Quick test_module_nesting;
          Alcotest.test_case "interface constructs" `Quick test_interface_full;
          Alcotest.test_case "type specs" `Quick test_types;
          Alcotest.test_case "unions" `Quick test_union;
          Alcotest.test_case "const precedence (* over +)" `Quick test_const_expr_precedence;
          Alcotest.test_case "const precedence (shift, or, and)" `Quick test_const_expr_shift_or;
          Alcotest.test_case "default parameter rules" `Quick test_default_param_constraints;
          Alcotest.test_case "oneway rules" `Quick test_oneway_constraints;
          Alcotest.test_case "forward declarations" `Quick test_forward_decl;
          Alcotest.test_case "#pragma prefix" `Quick test_pragma_prefix;
          Alcotest.test_case "#pragma round-trip" `Quick test_pragma_roundtrip;
          Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest roundtrip_prop ]);
    ]
