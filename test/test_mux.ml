(* Client connection-multiplexing tests: the per-connection reply
   demultiplexer (DESIGN.md section 9). N threads share one cached
   connection; replies are correlated by request id; connection death
   wakes every waiter with a retry-classifiable error; [max_in_flight =
   1] reproduces the historical serialized client. *)

let echo_type = "IDL:Test/Echo:1.0"

let echo_skeleton ?(noted = Atomic.make 0) () =
  Orb.Skeleton.create ~type_id:echo_type
    [
      ("echo", fun args results ->
          results.Wire.Codec.put_string ("echo:" ^ args.Wire.Codec.get_string ()));
      ("sleepy", fun args results ->
          Thread.delay (float_of_int (args.Wire.Codec.get_long ()) /. 1000.);
          results.Wire.Codec.put_bool true);
      ("note", fun _args _results -> Atomic.incr noted);
    ]

(* The default pool (8 workers) caps server-side concurrency below some
   of the thread counts used here; a wider pool keeps the server out of
   the way so the tests observe the CLIENT's connection behaviour. *)
let wide_pool =
  { Orb.default_server_policy with
    pool =
      Some
        (* Nap servants, not compute: systhreads overlap the sleeps
           without needing 24 domains. *)
        {
          Orb.Pool.workers = 24;
          queue_capacity = 64;
          admission = Orb.Pool.Reject;
          backend = Orb.Pool.Systhreads;
        }
  }

let eventually ?(timeout = 5.0) ?(msg = "condition") cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    if cond () then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      Thread.delay 0.005;
      wait ()
    end
  in
  wait ()

let mk_pair ?(protocol = Orb.Protocol.text) ?(transport = "mem")
    ?(host = "local") ?mux ?call_timeout () =
  let server =
    Orb.create ~protocol ~transport ~host ~server_policy:wide_pool ()
  in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let client =
    Orb.create ~protocol ~transport ~host ?mux ?call_timeout
      ~retry:Orb.Retry.none ()
  in
  (server, client, target)

(* ---------------- pipelining over one connection ---------------- *)

let test_calls_pipeline () =
  (* 8 threads, one endpoint, 120 ms of server-side sleep each. Over a
     serialized connection this takes >= 8 x 120 ms; with the demux the
     sleeps overlap. Assertions: everything succeeds, exactly ONE
     connection was opened, more than one call was observed in flight,
     and the wall clock proves actual overlap. *)
  let server, client, target = mk_pair () in
  let n = 8 in
  let ok = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init n (fun _ ->
        Thread.create
          (fun () ->
            match
              Orb.invoke client target ~op:"sleepy" (fun e ->
                  e.Wire.Codec.put_long 120)
            with
            | Some d -> if d.Wire.Codec.get_bool () then Atomic.incr ok
            | None -> ())
          ())
  in
  (* While the calls are in flight, the live gauge must show overlap. *)
  eventually ~msg:"in-flight > 1 observed" (fun () ->
      (Orb.stats client).Orb.mux_in_flight > 1);
  List.iter Thread.join threads;
  let took = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "all calls succeeded" n (Atomic.get ok);
  Alcotest.(check int) "one shared connection" 1 (Orb.connections_opened client);
  let st = Orb.stats client in
  Alcotest.(check bool) "peak in-flight > 1" true (st.Orb.mux_peak_in_flight > 1);
  Alcotest.(check int) "nothing left in flight" 0 st.Orb.mux_in_flight;
  (* Serialized floor is 8 x 120 ms = 0.96 s; overlapped calls must land
     well under it even on a loaded machine. *)
  Alcotest.(check bool)
    (Printf.sprintf "calls overlapped (took %.3fs)" took)
    true (took < 0.7);
  Orb.shutdown client;
  Orb.shutdown server

let test_reply_correlation () =
  (* Many threads, distinct payloads, many calls each: every reply must
     carry ITS request's payload even though replies complete out of
     order on the shared stream. *)
  let server, client, target = mk_pair () in
  let n_threads = 6 and calls_each = 25 in
  let mismatches = Atomic.make 0 and ok = Atomic.make 0 in
  let threads =
    List.init n_threads (fun tid ->
        Thread.create
          (fun () ->
            for i = 1 to calls_each do
              let payload = Printf.sprintf "t%d-c%d" tid i in
              match
                Orb.invoke client target ~op:"echo" (fun e ->
                    e.Wire.Codec.put_string payload)
              with
              | Some d ->
                  if d.Wire.Codec.get_string () = "echo:" ^ payload then
                    Atomic.incr ok
                  else Atomic.incr mismatches
              | None -> Atomic.incr mismatches
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "no cross-delivered replies" 0 (Atomic.get mismatches);
  Alcotest.(check int) "every call answered" (n_threads * calls_each)
    (Atomic.get ok);
  Alcotest.(check int) "one shared connection" 1 (Orb.connections_opened client);
  Orb.shutdown client;
  Orb.shutdown server

let test_in_flight_cap () =
  (* [max_in_flight = 2] with 4 concurrent slow calls: the two excess
     callers park until a slot frees, everyone completes, and the peak
     never exceeds the cap. *)
  let server, client, target =
    mk_pair ~mux:{ Orb.max_in_flight = 2 } ()
  in
  let ok = Atomic.make 0 in
  let threads =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            match
              Orb.invoke client target ~op:"sleepy" (fun e ->
                  e.Wire.Codec.put_long 60)
            with
            | Some _ -> Atomic.incr ok
            | None -> ())
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "all admitted eventually" 4 (Atomic.get ok);
  let st = Orb.stats client in
  Alcotest.(check int) "peak pinned at the cap" 2 st.Orb.mux_peak_in_flight;
  Orb.shutdown client;
  Orb.shutdown server

let test_oneway_under_mux () =
  (* Oneway calls never register a waiter: they must not consume
     in-flight slots or leave the pending table dirty. *)
  let noted = Atomic.make 0 in
  let server = Orb.create ~server_policy:wide_pool () in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ~noted ()) in
  let client = Orb.create ~retry:Orb.Retry.none () in
  for _ = 1 to 10 do
    match Orb.invoke client target ~op:"note" ~oneway:true (fun _ -> ()) with
    | None -> ()
    | Some _ -> Alcotest.fail "oneway call returned a payload"
  done;
  eventually ~msg:"oneways dispatched" (fun () -> Atomic.get noted = 10);
  Alcotest.(check int) "no waiters leaked" 0 (Orb.stats client).Orb.mux_in_flight;
  (* The stream is still healthy for two-way traffic. *)
  (match Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_string "x") with
  | Some d -> Alcotest.(check string) "two-way after oneways" "echo:x"
                (d.Wire.Codec.get_string ())
  | None -> Alcotest.fail "expected a reply");
  Orb.shutdown client;
  Orb.shutdown server

(* ---------------- serialized interop (max_in_flight = 1) -------------- *)

let test_serialized_interop () =
  (* The [max_in_flight = 1] client speaks to the same server with the
     historical lock-across-roundtrip exchange: correct answers, one
     connection, and no demux state at all (peak stays 0). *)
  let server, client, target = mk_pair ~mux:{ Orb.max_in_flight = 1 } () in
  let n_threads = 4 and calls_each = 10 in
  let ok = Atomic.make 0 in
  let threads =
    List.init n_threads (fun tid ->
        Thread.create
          (fun () ->
            for i = 1 to calls_each do
              let payload = Printf.sprintf "s%d-%d" tid i in
              match
                Orb.invoke client target ~op:"echo" (fun e ->
                    e.Wire.Codec.put_string payload)
              with
              | Some d when d.Wire.Codec.get_string () = "echo:" ^ payload ->
                  Atomic.incr ok
              | _ -> ()
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "all serialized calls correct" (n_threads * calls_each)
    (Atomic.get ok);
  Alcotest.(check int) "one shared connection" 1 (Orb.connections_opened client);
  let st = Orb.stats client in
  Alcotest.(check int) "no demux in-flight tracking" 0 st.Orb.mux_in_flight;
  Alcotest.(check int) "peak never moved" 0 st.Orb.mux_peak_in_flight;
  Orb.shutdown client;
  Orb.shutdown server

(* ---------------- failure semantics ---------------- *)

let test_crash_mid_flight_wakes_all () =
  (* 6 calls parked (no deadline: true condvar waits) when the server
     force-closes: every waiter must wake promptly with an error — no
     reply, no hang, nothing still registered afterwards. *)
  let server, client, target = mk_pair () in
  let n = 6 in
  let failed = Atomic.make 0 and replied = Atomic.make 0 in
  let done_ = Atomic.make 0 in
  let threads =
    List.init n (fun _ ->
        Thread.create
          (fun () ->
            (match
               Orb.invoke client target ~op:"sleepy" (fun e ->
                   e.Wire.Codec.put_long 3000)
             with
            | Some _ | None -> Atomic.incr replied
            | exception _ -> Atomic.incr failed);
            Atomic.incr done_)
          ())
  in
  eventually ~msg:"all calls in flight" (fun () ->
      (Orb.stats client).Orb.mux_in_flight = n);
  let t0 = Unix.gettimeofday () in
  Orb.shutdown server;
  (* Every waiter must fail long before the 3 s of server-side sleep the
     replies would have needed. *)
  eventually ~timeout:2.0 ~msg:"all waiters woke" (fun () ->
      Atomic.get done_ = n);
  let took = Unix.gettimeofday () -. t0 in
  List.iter Thread.join threads;
  Alcotest.(check int) "every waiter failed" n (Atomic.get failed);
  Alcotest.(check int) "no phantom replies" 0 (Atomic.get replied);
  Alcotest.(check bool)
    (Printf.sprintf "woke promptly (%.3fs)" took)
    true (took < 1.5);
  Alcotest.(check int) "pending table empty" 0 (Orb.stats client).Orb.mux_in_flight;
  Orb.shutdown client

let test_deadline_kills_connection () =
  (* A timed-out waiter abandons a reply the stream still owes; the
     demux kills the whole connection. The timed-out call sees Timeout
     (never retried); a collateral waiter sees a TRANSIENT transport
     error (retry-classifiable); the next call transparently redials. *)
  let server, client, target = mk_pair () in
  (* Warm the connection so both calls share one cached stream. *)
  ignore (Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_string "w"));
  let collateral = ref `Pending in
  let waiter =
    Thread.create
      (fun () ->
        collateral :=
          match
            Orb.invoke client target ~op:"sleepy" (fun e ->
                e.Wire.Codec.put_long 600)
          with
          | Some _ | None -> `Replied
          | exception e -> `Failed e)
      ()
  in
  eventually ~msg:"collateral call in flight" (fun () ->
      (Orb.stats client).Orb.mux_in_flight = 1);
  (match
     Orb.invoke client target ~op:"sleepy" ~timeout:0.1 (fun e ->
         e.Wire.Codec.put_long 600)
   with
  | Some _ | None -> Alcotest.fail "expected the short-deadline call to time out"
  | exception Orb.Transport.Timeout _ -> ()
  | exception e ->
      Alcotest.failf "expected Timeout, got %s" (Printexc.to_string e));
  Thread.join waiter;
  (match !collateral with
  | `Failed e ->
      Alcotest.(check bool)
        (Printf.sprintf "collateral error is transient (%s)"
           (Printexc.to_string e))
        true
        (Orb.Retry.classify e = Orb.Retry.Transient)
  | `Replied -> Alcotest.fail "collateral waiter got a reply off a dead stream"
  | `Pending -> Alcotest.fail "collateral waiter never finished");
  (* The poisoned connection left the cache: the next call redials. *)
  (match Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_string "y") with
  | Some d -> Alcotest.(check string) "fresh connection works" "echo:y"
                (d.Wire.Codec.get_string ())
  | None -> Alcotest.fail "expected a reply after redial");
  Alcotest.(check int) "a second connection was opened" 2
    (Orb.connections_opened client);
  Orb.shutdown client;
  Orb.shutdown server

(* ---------------- other protocols and transports ---------------- *)

let test_giop_under_mux () =
  let protocol = Giop.protocol () in
  let server, client, target = mk_pair ~protocol () in
  let ok = Atomic.make 0 in
  let threads =
    List.init 4 (fun tid ->
        Thread.create
          (fun () ->
            for i = 1 to 10 do
              let payload = Printf.sprintf "g%d-%d" tid i in
              match
                Orb.invoke client target ~op:"echo" (fun e ->
                    e.Wire.Codec.put_string payload)
              with
              | Some d when d.Wire.Codec.get_string () = "echo:" ^ payload ->
                  Atomic.incr ok
              | _ -> ()
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "giop replies all correlated" 40 (Atomic.get ok);
  Alcotest.(check int) "one shared connection" 1 (Orb.connections_opened client);
  Orb.shutdown client;
  Orb.shutdown server

let test_tcp_pipelining () =
  let server, client, target = mk_pair ~transport:"tcp" ~host:"127.0.0.1" () in
  let n = 4 in
  let ok = Atomic.make 0 in
  let threads =
    List.init n (fun _ ->
        Thread.create
          (fun () ->
            match
              Orb.invoke client target ~op:"sleepy" (fun e ->
                  e.Wire.Codec.put_long 80)
            with
            | Some _ -> Atomic.incr ok
            | None -> ())
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "all tcp calls succeeded" n (Atomic.get ok);
  Alcotest.(check int) "one shared tcp connection" 1
    (Orb.connections_opened client);
  Alcotest.(check bool) "tcp calls pipelined" true
    ((Orb.stats client).Orb.mux_peak_in_flight > 1);
  Orb.shutdown client;
  Orb.shutdown server

let () =
  Alcotest.run "mux"
    [
      ( "pipelining",
        [
          Alcotest.test_case "calls pipeline over one connection" `Quick
            test_calls_pipeline;
          Alcotest.test_case "reply correlation" `Quick test_reply_correlation;
          Alcotest.test_case "in-flight cap" `Quick test_in_flight_cap;
          Alcotest.test_case "oneway under mux" `Quick test_oneway_under_mux;
        ] );
      ( "interop",
        [
          Alcotest.test_case "max_in_flight=1 serialized path" `Quick
            test_serialized_interop;
        ] );
      ( "failure",
        [
          Alcotest.test_case "crash mid-flight wakes all waiters" `Quick
            test_crash_mid_flight_wakes_all;
          Alcotest.test_case "deadline kills the connection" `Quick
            test_deadline_kills_connection;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "giop under mux" `Quick test_giop_under_mux;
          Alcotest.test_case "tcp pipelining" `Quick test_tcp_pipelining;
        ] );
    ]
