(* Lexer unit tests: token classification, literals, comments, errors. *)

let lex_all src =
  let lexbuf = Lexing.from_string src in
  let rec go acc =
    match Idl.Lexer.token lexbuf with
    | Idl.Token.EOF -> List.rev acc
    | tok -> go (tok :: acc)
  in
  go []

let check_tokens name src expected =
  Alcotest.(check int) (name ^ " count") (List.length expected) (List.length (lex_all src));
  List.iter2
    (fun want got ->
      Alcotest.(check string) name (Idl.Token.to_string want) (Idl.Token.to_string got))
    expected (lex_all src)

let test_keywords () =
  check_tokens "keywords" "module interface incopy oneway readonly"
    [
      Idl.Token.KW_module;
      Idl.Token.KW_interface;
      Idl.Token.KW_incopy;
      Idl.Token.KW_oneway;
      Idl.Token.KW_readonly;
    ]

let test_keywords_case_sensitive () =
  (* IDL keywords are case-sensitive: "Module" is an identifier. *)
  check_tokens "case" "Module TRUE true"
    [ Idl.Token.IDENT "Module"; Idl.Token.KW_true; Idl.Token.IDENT "true" ]

let test_integers () =
  check_tokens "ints" "0 42 0x2A 052"
    [
      Idl.Token.INT_LIT 0L;
      Idl.Token.INT_LIT 42L;
      Idl.Token.INT_LIT 42L;
      Idl.Token.INT_LIT 42L;
    ]

let test_floats () =
  check_tokens "floats" "1.5 .25 2e3 1.0E-2"
    [
      Idl.Token.FLOAT_LIT 1.5;
      Idl.Token.FLOAT_LIT 0.25;
      Idl.Token.FLOAT_LIT 2000.;
      Idl.Token.FLOAT_LIT 0.01;
    ]

let test_char_literals () =
  check_tokens "chars" {|'a' '\n' '\\' '\''|}
    [
      Idl.Token.CHAR_LIT 'a';
      Idl.Token.CHAR_LIT '\n';
      Idl.Token.CHAR_LIT '\\';
      Idl.Token.CHAR_LIT '\'';
    ]

let test_string_literals () =
  check_tokens "strings" {|"hello" "a\"b" "tab\there"|}
    [
      Idl.Token.STRING_LIT "hello";
      Idl.Token.STRING_LIT "a\"b";
      Idl.Token.STRING_LIT "tab\there";
    ]

let test_punctuation () =
  check_tokens "punct" ":: : ; { } ( ) < > << >> = , | ^ & ~ + - * / %"
    [
      Idl.Token.COLONCOLON; Idl.Token.COLON; Idl.Token.SEMI; Idl.Token.LBRACE;
      Idl.Token.RBRACE; Idl.Token.LPAREN; Idl.Token.RPAREN; Idl.Token.LT;
      Idl.Token.GT; Idl.Token.SHL; Idl.Token.SHR; Idl.Token.EQ; Idl.Token.COMMA;
      Idl.Token.PIPE; Idl.Token.CARET; Idl.Token.AMP; Idl.Token.TILDE;
      Idl.Token.PLUS; Idl.Token.MINUS; Idl.Token.STAR; Idl.Token.SLASH;
      Idl.Token.PERCENT;
    ]

let test_comments () =
  check_tokens "comments" "long // line comment\n/* block\ncomment */ short"
    [ Idl.Token.KW_long; Idl.Token.KW_short ]

let test_preprocessor_skipped () =
  check_tokens "cpp" "#include \"x.idl\"\nlong" [ Idl.Token.KW_long ]

let expect_lex_error name src =
  match lex_all src with
  | exception Idl.Diag.Idl_error _ -> ()
  | _ -> Alcotest.failf "%s: expected a lexical error" name

let test_errors () =
  expect_lex_error "unterminated comment" "/* never closed";
  expect_lex_error "unterminated string" "\"never closed";
  expect_lex_error "bad escape" {|"\q"|};
  expect_lex_error "stray char" "interface ?";
  expect_lex_error "newline in string" "\"a\nb\""

let test_line_tracking () =
  let lexbuf = Lexing.from_string "long\n\nshort" in
  Lexing.set_filename lexbuf "f.idl";
  ignore (Idl.Lexer.token lexbuf);
  ignore (Idl.Lexer.token lexbuf);
  let p = Lexing.lexeme_start_p lexbuf in
  Alcotest.(check int) "line" 3 p.Lexing.pos_lnum

let () =
  Alcotest.run "lexer"
    [
      ( "tokens",
        [
          Alcotest.test_case "keywords" `Quick test_keywords;
          Alcotest.test_case "case-sensitivity" `Quick test_keywords_case_sensitive;
          Alcotest.test_case "integers" `Quick test_integers;
          Alcotest.test_case "floats" `Quick test_floats;
          Alcotest.test_case "char literals" `Quick test_char_literals;
          Alcotest.test_case "string literals" `Quick test_string_literals;
          Alcotest.test_case "punctuation" `Quick test_punctuation;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "preprocessor lines skipped" `Quick test_preprocessor_skipped;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "line tracking" `Quick test_line_tracking;
        ] );
    ]
