(* Server-hardening tests: the bounded worker pool and its admission
   policies, per-connection pipelining caps, idle-LRU connection
   eviction, graceful drain, and the overload soak with conservation
   accounting (every request is served, rejected or provably never
   dispatched — none vanish). *)

module F = Orb.Transport.Fault

let echo_type = "IDL:Test/Echo:1.0"

let echo_skeleton () =
  Orb.Skeleton.create ~type_id:echo_type
    [
      ("echo", fun args results ->
          results.Wire.Codec.put_string ("echo:" ^ args.Wire.Codec.get_string ()));
      ("sleepy", fun args results ->
          Thread.delay (float_of_int (args.Wire.Codec.get_long ()) /. 1000.);
          results.Wire.Codec.put_bool true);
    ]

(* Poll until [cond] holds, failing after [timeout] seconds — the
   systhreads idiom for "eventually", same as the transport's deadline
   polling. *)
let eventually ?(timeout = 5.0) ?(msg = "condition") cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    if cond () then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      Thread.delay 0.005;
      wait ()
    end
  in
  wait ()

(* A gate a job can block on until the test opens it. *)
let make_gate () =
  let m = Mutex.create () in
  let opened = ref false in
  let wait () =
    let rec go () =
      Mutex.lock m;
      let o = !opened in
      Mutex.unlock m;
      if not o then begin
        Thread.delay 0.002;
        go ()
      end
    in
    go ()
  in
  let release () =
    Mutex.lock m;
    opened := true;
    Mutex.unlock m
  in
  (wait, release)

(* ---------------- pool unit tests ---------------- *)

let test_pool_runs_jobs () =
  let pool =
    Orb.Pool.create
      (* Capacity >= job count: nothing may be shed even if the workers
         have not started draining when the last submit lands. *)
      { Orb.Pool.default_config with workers = 3; queue_capacity = 32 }
  in
  let done_ = Atomic.make 0 in
  for _ = 1 to 20 do
    match Orb.Pool.submit pool (fun () -> Atomic.incr done_) with
    | `Accepted -> ()
    | `Rejected r -> Alcotest.failf "unexpected rejection: %s" r
    | `Expired -> Alcotest.fail "unexpected expiry"
  done;
  eventually ~msg:"20 jobs completed" (fun () -> Atomic.get done_ = 20);
  let s = Orb.Pool.stats pool in
  Alcotest.(check int) "submitted" 20 s.Orb.Pool.submitted;
  Alcotest.(check int) "completed" 20 s.Orb.Pool.completed;
  Alcotest.(check int) "rejected" 0 s.Orb.Pool.rejected;
  Alcotest.(check int) "queue empty" 0 (Orb.Pool.depth pool);
  ignore (Orb.Pool.stop pool)

let test_pool_rejects_when_full () =
  let pool =
    Orb.Pool.create
      { Orb.Pool.default_config with workers = 1; queue_capacity = 1 }
  in
  let wait, release = make_gate () in
  (* Occupy the single worker, then the single queue slot. *)
  (match Orb.Pool.submit pool wait with
  | `Accepted -> ()
  | `Rejected r -> Alcotest.failf "worker job rejected: %s" r
  | `Expired -> Alcotest.fail "worker job unexpectedly expired");
  eventually ~msg:"worker busy" (fun () -> Orb.Pool.active pool = 1);
  (match Orb.Pool.submit pool wait with
  | `Accepted -> ()
  | `Rejected r -> Alcotest.failf "queued job rejected: %s" r
  | `Expired -> Alcotest.fail "queued job unexpectedly expired");
  (* Third job: queue is full, Reject admission fails immediately. *)
  (match Orb.Pool.submit pool (fun () -> ()) with
  | `Accepted -> Alcotest.fail "expected rejection on a full queue"
  | `Expired -> Alcotest.fail "expected rejection, got expiry"
  | `Rejected reason ->
      Alcotest.(check bool) "reason names overload" true
        (Tutil.contains reason "overloaded"));
  release ();
  eventually ~msg:"jobs drained" (fun () ->
      (Orb.Pool.stats pool).Orb.Pool.completed = 2);
  ignore (Orb.Pool.stop pool)

let test_pool_block_admission_deadline () =
  let pool =
    Orb.Pool.create
      {
        Orb.Pool.default_config with
        workers = 1;
        queue_capacity = 1;
        admission = Orb.Pool.Block (Some 0.08);
      }
  in
  let wait, release = make_gate () in
  ignore (Orb.Pool.submit pool wait);
  eventually ~msg:"worker busy" (fun () -> Orb.Pool.active pool = 1);
  ignore (Orb.Pool.submit pool wait);
  (* Queue full and the worker never frees it: the blocking submit must
     give up at its deadline, not hang. *)
  let t0 = Unix.gettimeofday () in
  (match Orb.Pool.submit pool (fun () -> ()) with
  | `Accepted -> Alcotest.fail "expected deadline rejection"
  | `Expired -> Alcotest.fail "expected deadline rejection, got expiry"
  | `Rejected reason ->
      Alcotest.(check bool) "reason names the deadline" true
        (Tutil.contains reason "deadline"));
  let waited = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "blocked about the deadline (%.3fs)" waited)
    true
    (waited >= 0.07 && waited < 1.0);
  (* And when space DOES free, a blocking submit goes through. *)
  let accepted = ref false in
  let t =
    Thread.create
      (fun () ->
        match Orb.Pool.submit pool (fun () -> ()) with
        | `Accepted -> accepted := true
        | `Rejected _ | `Expired -> ())
      ()
  in
  Thread.delay 0.02;
  release ();
  Thread.join t;
  Alcotest.(check bool) "unblocked submit accepted" true !accepted;
  eventually ~msg:"all done" (fun () ->
      Orb.Pool.depth pool = 0 && Orb.Pool.active pool = 0);
  ignore (Orb.Pool.stop pool)

let test_pool_drain () =
  (* Clean drain: everything in flight finishes, then submits fail. *)
  let pool =
    Orb.Pool.create
      { Orb.Pool.default_config with workers = 2; queue_capacity = 8 }
  in
  let done_ = Atomic.make 0 in
  for _ = 1 to 6 do
    ignore
      (Orb.Pool.submit pool (fun () ->
           Thread.delay 0.01;
           Atomic.incr done_))
  done;
  (match Orb.Pool.drain pool ~deadline:(Some (Unix.gettimeofday () +. 5.0)) with
  | `Drained -> ()
  | `Aborted n -> Alcotest.failf "drain aborted with %d jobs left" n);
  Alcotest.(check int) "all jobs ran before drain returned" 6 (Atomic.get done_);
  (match Orb.Pool.submit pool (fun () -> ()) with
  | `Accepted -> Alcotest.fail "draining pool accepted a job"
  | `Expired -> Alcotest.fail "draining pool reported expiry"
  | `Rejected reason ->
      Alcotest.(check bool) "reason names draining" true
        (Tutil.contains reason "draining"));
  ignore (Orb.Pool.stop pool);
  (* Aborted drain: a stuck job forces the deadline path. *)
  let pool =
    Orb.Pool.create
      { Orb.Pool.default_config with workers = 1; queue_capacity = 4 }
  in
  let wait, release = make_gate () in
  ignore (Orb.Pool.submit pool wait);
  eventually ~msg:"worker busy" (fun () -> Orb.Pool.active pool = 1);
  ignore (Orb.Pool.submit pool (fun () -> ()));
  (match Orb.Pool.drain pool ~deadline:(Some (Unix.gettimeofday () +. 0.05)) with
  | `Drained -> Alcotest.fail "drain with a stuck job reported clean"
  | `Aborted n -> Alcotest.(check int) "stuck + queued abandoned" 2 n);
  release ();
  ignore (Orb.Pool.stop pool)

(* ------------- ORB-level: overload, pipelining, eviction ------------- *)

let tiny_pool =
  { Orb.Pool.default_config with workers = 1; queue_capacity = 1 }

let test_overload_rejects_with_system_exception () =
  (* 8 single-call clients against 1 worker + 1 queue slot of 150 ms
     work: some calls must be shed, every shed call must surface as a
     diagnosable System_exception naming the overload, and nothing may
     hang. *)
  let server =
    Orb.create ~transport:"mem" ~host:"local"
      ~server_policy:{ Orb.default_server_policy with pool = Some tiny_pool }
      ()
  in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let n = 8 in
  let ok = Atomic.make 0 and shed = Atomic.make 0 and other = Atomic.make 0 in
  let clients =
    List.init n (fun _ ->
        Orb.create ~transport:"mem" ~host:"local" ~retry:Orb.Retry.none ())
  in
  let threads =
    List.map
      (fun client ->
        Thread.create
          (fun () ->
            match
              Orb.invoke client target ~op:"sleepy" (fun e ->
                  e.Wire.Codec.put_long 150)
            with
            | Some _ -> Atomic.incr ok
            | None -> Atomic.incr other
            | exception Orb.System_exception m
              when Tutil.contains m "overloaded" ->
                Atomic.incr shed
            | exception _ -> Atomic.incr other)
          ())
      clients
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "every call got an outcome" n
    (Atomic.get ok + Atomic.get shed + Atomic.get other);
  Alcotest.(check int) "no transport failures or hangs" 0 (Atomic.get other);
  (* At least the request the worker is executing completes; whether
     the queue slot was filled before the worker popped the first job
     is a scheduling race, so only >= 1 is deterministic. *)
  Alcotest.(check bool) "some calls served" true (Atomic.get ok >= 1);
  Alcotest.(check bool) "some calls shed" true (Atomic.get shed >= 1);
  let st = Orb.stats server in
  Alcotest.(check int) "server counted the shed calls" (Atomic.get shed)
    st.Orb.rejected;
  Alcotest.(check int) "served + rejected = total" n
    (st.Orb.served + st.Orb.rejected);
  List.iter Orb.shutdown clients;
  Orb.shutdown server

let test_pipelining_cap () =
  (* A client that floods one connection with back-to-back requests
     past [max_pipelined] gets the excess rejected (not silently
     dropped, not crashing the reader), while the admitted ones still
     complete. Raw communicator, because Orb.invoke is strictly
     call-reply per connection. *)
  let server =
    Orb.create ~transport:"mem" ~host:"local"
      ~server_policy:{ Orb.default_server_policy with max_pipelined = 2 }
      ()
  in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let chan =
    Orb.Transport.connect ~proto:"mem" ~host:"local" ~port:(Orb.port server)
  in
  let comm = Orb.Communicator.wrap Orb.Protocol.text chan in
  let payload =
    let e = Orb.Protocol.text.Orb.Protocol.codec.Wire.Codec.encoder () in
    e.Wire.Codec.put_long 120;
    e.Wire.Codec.finish ()
  in
  let total = 5 in
  for req_id = 1 to total do
    Orb.Communicator.send comm
      (Orb.Protocol.Request
         {
           req_id;
           target;
           operation = "sleepy";
           oneway = false;
           payload;
           trace_ctx = "";
           budget_us = None;
           nego_offer = "";
         })
  done;
  let ok = ref 0 and capped = ref 0 in
  Orb.Communicator.set_deadline comm (Some (Unix.gettimeofday () +. 5.0));
  for _ = 1 to total do
    match Orb.Communicator.recv comm with
    | Orb.Protocol.Reply { status = Orb.Protocol.Status_ok; _ } -> incr ok
    | Orb.Protocol.Reply { status = Orb.Protocol.Status_system_error m; _ }
      when Tutil.contains m "pipelined" ->
        incr capped
    | Orb.Protocol.Reply { status; _ } ->
        Alcotest.failf "unexpected reply status %s"
          (Orb.Protocol.status_to_string status)
    | _ -> Alcotest.fail "unexpected non-reply message"
  done;
  Alcotest.(check int) "all requests answered" total (!ok + !capped);
  Alcotest.(check bool) "admitted up to the cap" true (!ok >= 2);
  Alcotest.(check bool) "excess rejected" true (!capped >= 1);
  Orb.Communicator.close comm;
  Orb.shutdown server

let test_idle_lru_eviction () =
  let server =
    Orb.create ~transport:"mem" ~host:"local"
      ~server_policy:{ Orb.default_server_policy with max_connections = 2 }
      ()
  in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let invoke client s =
    match
      Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_string s)
    with
    | Some d -> d.Wire.Codec.get_string ()
    | None -> Alcotest.fail "expected a reply"
  in
  let a = Orb.create ~transport:"mem" ~host:"local" () in
  let b = Orb.create ~transport:"mem" ~host:"local" () in
  let c = Orb.create ~transport:"mem" ~host:"local" () in
  Alcotest.(check string) "a" "echo:a" (invoke a "a");
  Thread.delay 0.02 (* make a's connection measurably the stalest *);
  Alcotest.(check string) "b" "echo:b" (invoke b "b");
  Thread.delay 0.02;
  (* Third connection crosses max_connections: a's idle connection is
     evicted at accept time. *)
  Alcotest.(check string) "c" "echo:c" (invoke c "c");
  eventually ~msg:"eviction recorded" (fun () ->
      (Orb.stats server).Orb.evicted = 1);
  eventually ~msg:"gauge back under the limit" (fun () ->
      (Orb.stats server).Orb.server_connections <= 2);
  (* The evicted client notices its cached connection is gone and
     transparently reconnects (stale-connection retry) — eviction is
     invisible at the call level. *)
  Alcotest.(check string) "a reconnects" "echo:again" (invoke a "again");
  Alcotest.(check int) "a opened a second connection" 2
    (Orb.connections_opened a);
  List.iter Orb.shutdown [ a; b; c ];
  Orb.shutdown server

(* ---------------- graceful drain ---------------- *)

let test_graceful_drain_completes_inflight () =
  let server = Orb.create ~transport:"mem" ~host:"local" () in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let client =
    Orb.create ~transport:"mem" ~host:"local" ~retry:Orb.Retry.none ()
  in
  let result = ref `Pending in
  let t =
    Thread.create
      (fun () ->
        result :=
          match
            Orb.invoke client target ~op:"sleepy" (fun e ->
                e.Wire.Codec.put_long 250)
          with
          | Some d -> if d.Wire.Codec.get_bool () then `Ok else `Bad
          | None -> `Bad
          | exception e -> `Exn (Printexc.to_string e))
      ()
  in
  (* Let the call reach the worker, then shut down with a grace window
     longer than the remaining work: the reply must still be delivered. *)
  Thread.delay 0.08;
  Orb.shutdown ~drain_deadline:3.0 server;
  Thread.join t;
  (match !result with
  | `Ok -> ()
  | `Pending -> Alcotest.fail "call never finished"
  | `Bad -> Alcotest.fail "call lost its reply during drain"
  | `Exn m -> Alcotest.failf "in-flight call failed during drain: %s" m);
  let st = Orb.stats server in
  Alcotest.(check int) "drain counted clean" 1 st.Orb.drains_clean;
  Alcotest.(check int) "nothing abandoned" 0 st.Orb.drain_aborted_jobs;
  Orb.shutdown client

let test_drain_deadline_aborts () =
  let server = Orb.create ~transport:"mem" ~host:"local" () in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let client =
    Orb.create ~transport:"mem" ~host:"local" ~retry:Orb.Retry.none ()
  in
  let outcome = ref `Pending in
  let t =
    Thread.create
      (fun () ->
        outcome :=
          match
            Orb.invoke client target ~op:"sleepy" (fun e ->
                e.Wire.Codec.put_long 1500)
          with
          | Some _ -> `Ok
          | None -> `Ok
          | exception _ -> `Failed)
      ()
  in
  Thread.delay 0.08;
  (* Grace window far shorter than the in-flight work: the drain must
     give up at its deadline (not wait the full 1.5 s) and account for
     the abandoned dispatch. *)
  let t0 = Unix.gettimeofday () in
  Orb.shutdown ~drain_deadline:0.1 server;
  let took = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "shutdown bounded by the deadline (%.3fs)" took)
    true (took < 1.0);
  let st = Orb.stats server in
  Alcotest.(check int) "no clean drain" 0 st.Orb.drains_clean;
  Alcotest.(check bool) "abandoned work accounted" true
    (st.Orb.drain_aborted_jobs >= 1);
  Thread.join t;
  (match !outcome with
  | `Failed -> ()
  | `Ok -> Alcotest.fail "call survived a force-close it should not have"
  | `Pending -> Alcotest.fail "call never finished");
  Orb.shutdown client

let test_draining_rejects_new_requests () =
  (* While a drain is in progress, a new request on an existing
     connection is answered with a "draining" system exception. *)
  let server = Orb.create ~transport:"mem" ~host:"local" () in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let client =
    Orb.create ~transport:"mem" ~host:"local" ~retry:Orb.Retry.none ()
  in
  (match
     Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_string "warm")
   with
  | Some _ -> ()
  | None -> Alcotest.fail "warm-up call failed");
  (* Hold the drain open with a slow call so the window is observable. *)
  let holder =
    Orb.create ~transport:"mem" ~host:"local" ~retry:Orb.Retry.none ()
  in
  let t =
    Thread.create
      (fun () ->
        try
          ignore
            (Orb.invoke holder target ~op:"sleepy" (fun e ->
                 e.Wire.Codec.put_long 400))
        with _ -> ())
      ()
  in
  Thread.delay 0.08;
  let shut =
    Thread.create (fun () -> Orb.shutdown ~drain_deadline:3.0 server) ()
  in
  Thread.delay 0.08;
  (match
     Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_string "late")
   with
  | Some _ -> Alcotest.fail "request during drain was served"
  | None -> Alcotest.fail "request during drain returned no reply"
  | exception Orb.System_exception m ->
      Alcotest.(check bool) "reason names draining" true
        (Tutil.contains m "draining")
  | exception e ->
      Alcotest.failf "expected a draining System_exception, got %s"
        (Printexc.to_string e));
  Thread.join t;
  Thread.join shut;
  List.iter Orb.shutdown [ client; holder ]

(* ---------------- deadline budgets ---------------- *)

(* A servant with a tripwire: executing "mark" proves the server ran
   zombie work. Expired requests must never reach it. *)
let probe_skeleton ran =
  Orb.Skeleton.create ~type_id:echo_type
    [
      ("sleepy", fun args results ->
          Thread.delay (float_of_int (args.Wire.Codec.get_long ()) /. 1000.);
          results.Wire.Codec.put_bool true);
      ("mark", fun _ results ->
          Atomic.set ran true;
          results.Wire.Codec.put_bool true);
    ]

let send_raw comm ~req_id ~target ~op ?budget_us payload =
  Orb.Communicator.send comm
    (Orb.Protocol.Request
       {
         req_id;
         target;
         operation = op;
         oneway = false;
         payload;
         trace_ctx = "";
         budget_us;
         nego_offer = "";
       })

let sleepy_payload ms =
  let e = Orb.Protocol.text.Orb.Protocol.codec.Wire.Codec.encoder () in
  e.Wire.Codec.put_long ms;
  e.Wire.Codec.finish ()

let test_budget_expires_in_queue () =
  (* The zombie-work kill: a queued request whose budget lapses while a
     slow job holds the single worker is answered "expired in queue" —
     and its servant provably never runs. *)
  let ran = Atomic.make false in
  let server =
    Orb.create ~transport:"mem" ~host:"local"
      ~server_policy:{ Orb.default_server_policy with pool = Some tiny_pool }
      ()
  in
  Orb.start server;
  let target = Orb.export server (probe_skeleton ran) in
  let chan =
    Orb.Transport.connect ~proto:"mem" ~host:"local" ~port:(Orb.port server)
  in
  let comm = Orb.Communicator.wrap Orb.Protocol.text chan in
  send_raw comm ~req_id:1 ~target ~op:"sleepy" (sleepy_payload 200);
  (* Let the worker pick up the sleeper, then queue the doomed call:
     50 ms of budget against 200 ms of queue wait. *)
  Thread.delay 0.05;
  send_raw comm ~req_id:2 ~target ~op:"mark" ~budget_us:50_000 "";
  Orb.Communicator.set_deadline comm (Some (Unix.gettimeofday () +. 5.0));
  let got_ok = ref 0 and got_expired = ref 0 in
  for _ = 1 to 2 do
    match Orb.Communicator.recv comm with
    | Orb.Protocol.Reply { rep_id = 1; status = Orb.Protocol.Status_ok; _ } ->
        incr got_ok
    | Orb.Protocol.Reply
        { rep_id = 2; status = Orb.Protocol.Status_system_error m; _ }
      when Tutil.contains m "expired in queue" ->
        incr got_expired
    | Orb.Protocol.Reply { rep_id; status; _ } ->
        Alcotest.failf "unexpected reply %d: %s" rep_id
          (Orb.Protocol.status_to_string status)
    | _ -> Alcotest.fail "unexpected non-reply message"
  done;
  Alcotest.(check int) "sleeper answered" 1 !got_ok;
  Alcotest.(check int) "doomed call answered expired" 1 !got_expired;
  Alcotest.(check bool) "servant never ran the expired request" false
    (Atomic.get ran);
  let st = Orb.stats server in
  Alcotest.(check int) "expired_in_queue counted" 1 st.Orb.expired_in_queue;
  Alcotest.(check int) "not conflated with overload" 0 st.Orb.rejected;
  Orb.Communicator.close comm;
  Orb.shutdown server

let test_budget_expired_pre_admission () =
  (* A request arriving with zero budget is shed at decode: answered
     before any pool interaction, counted separately from overload. *)
  let ran = Atomic.make false in
  let server = Orb.create ~transport:"mem" ~host:"local" () in
  Orb.start server;
  let target = Orb.export server (probe_skeleton ran) in
  let chan =
    Orb.Transport.connect ~proto:"mem" ~host:"local" ~port:(Orb.port server)
  in
  let comm = Orb.Communicator.wrap Orb.Protocol.text chan in
  send_raw comm ~req_id:7 ~target ~op:"mark" ~budget_us:0 "";
  Orb.Communicator.set_deadline comm (Some (Unix.gettimeofday () +. 5.0));
  (match Orb.Communicator.recv comm with
  | Orb.Protocol.Reply
      { rep_id = 7; status = Orb.Protocol.Status_system_error m; _ } ->
      Alcotest.(check bool) "reason names admission" true
        (Tutil.contains m "expired before admission")
  | _ -> Alcotest.fail "expected an expired system-error reply");
  Alcotest.(check bool) "servant never ran" false (Atomic.get ran);
  let st = Orb.stats server in
  Alcotest.(check int) "expired_pre_admission counted" 1
    st.Orb.expired_pre_admission;
  Orb.Communicator.close comm;
  Orb.shutdown server

let test_shutdown_expiry_exactly_one_reply () =
  (* The shutdown x deadline interleaving: a queued request whose
     budget expires while [Orb.shutdown ~drain_deadline] is draining
     must get EXACTLY one reply — the expiry answer from the worker,
     never a second one from the drain's cancel path, and never
     silence. *)
  let ran = Atomic.make false in
  let server =
    Orb.create ~transport:"mem" ~host:"local"
      ~server_policy:{ Orb.default_server_policy with pool = Some tiny_pool }
      ()
  in
  Orb.start server;
  let target = Orb.export server (probe_skeleton ran) in
  let chan =
    Orb.Transport.connect ~proto:"mem" ~host:"local" ~port:(Orb.port server)
  in
  let comm = Orb.Communicator.wrap Orb.Protocol.text chan in
  send_raw comm ~req_id:1 ~target ~op:"sleepy" (sleepy_payload 300);
  Thread.delay 0.08;
  (* 100 ms of budget; the worker frees up at ~300 ms, mid-drain. *)
  send_raw comm ~req_id:2 ~target ~op:"mark" ~budget_us:100_000 "";
  Thread.delay 0.02;
  let shut =
    Thread.create (fun () -> Orb.shutdown ~drain_deadline:3.0 server) ()
  in
  (* Read until the drain's force-close ends the connection, tallying
     every reply per request id. *)
  let replies = Hashtbl.create 4 in
  let expired_msgs = ref 0 in
  Orb.Communicator.set_deadline comm (Some (Unix.gettimeofday () +. 5.0));
  (try
     while true do
       match Orb.Communicator.recv comm with
       | Orb.Protocol.Reply { rep_id; status; _ } ->
           Hashtbl.replace replies rep_id
             (1 + Option.value ~default:0 (Hashtbl.find_opt replies rep_id));
           (match status with
           | Orb.Protocol.Status_system_error m
             when Tutil.contains m "expired" ->
               incr expired_msgs
           | _ -> ())
       | _ -> ()
     done
   with _ -> ());
  Thread.join shut;
  Alcotest.(check (option int)) "sleeper: exactly one reply" (Some 1)
    (Hashtbl.find_opt replies 1);
  Alcotest.(check (option int)) "expired call: exactly one reply" (Some 1)
    (Hashtbl.find_opt replies 2);
  Alcotest.(check int) "the one reply was the expiry answer" 1 !expired_msgs;
  Alcotest.(check bool) "servant never ran after the budget lapsed" false
    (Atomic.get ran);
  let st = Orb.stats server in
  Alcotest.(check int) "expired_in_queue counted" 1 st.Orb.expired_in_queue;
  Alcotest.(check int) "drain finished clean" 1 st.Orb.drains_clean;
  Orb.Communicator.close comm

(* --------- soak: overload + faults, with conservation --------- *)

let test_soak_conservation () =
  (* N clients x M calls against a small pool, with seeded
     connect-refusal faults on top. Two invariants:
       1. zero lost replies — every call ends in a definite outcome;
       2. conservation — calls that reached the server (any reply:
          ok or system exception) = served + rejected on the server;
          connect-refused calls appear on neither side. *)
  let server =
    Orb.create ~transport:"faulty:mem" ~host:"local"
      ~server_policy:
        {
          Orb.default_server_policy with
          pool =
            Some
              {
                Orb.Pool.default_config with
                workers = 4;
                queue_capacity = 8;
              };
        }
      ()
  in
  Orb.start server;
  let target = Orb.export server (echo_skeleton ()) in
  let n_clients = 8 and calls_each = 30 in
  let clients =
    List.init n_clients (fun _ ->
        Orb.create ~transport:"mem" ~host:"local" ~retry:Orb.Retry.none ())
  in
  F.set_plan (F.seeded ~seed:11 ~refuse_connect:0.15 ());
  let ok = Atomic.make 0
  and serr = Atomic.make 0
  and never_reached = Atomic.make 0 in
  let threads =
    List.map
      (fun client ->
        Thread.create
          (fun () ->
            for i = 1 to calls_each do
              match
                Orb.invoke client target ~op:"sleepy" (fun e ->
                    e.Wire.Codec.put_long (if i mod 3 = 0 then 4 else 1))
              with
              | Some _ -> Atomic.incr ok
              | None -> ()
              | exception Orb.System_exception _ -> Atomic.incr serr
              | exception Orb.Transport.Transport_error _ ->
                  (* Refused connect: provably never dispatched. *)
                  Atomic.incr never_reached
            done)
          ())
      clients
  in
  List.iter Thread.join threads;
  F.clear ();
  let total = n_clients * calls_each in
  let reached = Atomic.get ok + Atomic.get serr in
  Alcotest.(check int) "zero lost replies" total
    (reached + Atomic.get never_reached);
  Alcotest.(check bool) "faults actually fired" true
    (Atomic.get never_reached > 0);
  let st = Orb.stats server in
  Alcotest.(check int) "conservation: reached = served + rejected" reached
    (st.Orb.served + st.Orb.rejected);
  List.iter Orb.shutdown clients;
  Orb.shutdown server

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "runs jobs" `Quick test_pool_runs_jobs;
          Alcotest.test_case "rejects when full" `Quick test_pool_rejects_when_full;
          Alcotest.test_case "block admission deadline" `Quick
            test_pool_block_admission_deadline;
          Alcotest.test_case "drain" `Quick test_pool_drain;
        ] );
      ( "overload",
        [
          Alcotest.test_case "reject surfaces as System_exception" `Quick
            test_overload_rejects_with_system_exception;
          Alcotest.test_case "pipelining cap" `Quick test_pipelining_cap;
          Alcotest.test_case "idle-LRU eviction" `Quick test_idle_lru_eviction;
        ] );
      ( "drain",
        [
          Alcotest.test_case "completes in-flight" `Quick
            test_graceful_drain_completes_inflight;
          Alcotest.test_case "deadline aborts" `Quick test_drain_deadline_aborts;
          Alcotest.test_case "rejects during window" `Quick
            test_draining_rejects_new_requests;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "expires in queue, servant never runs" `Quick
            test_budget_expires_in_queue;
          Alcotest.test_case "expired before admission" `Quick
            test_budget_expired_pre_admission;
          Alcotest.test_case "shutdown x expiry: exactly one reply" `Quick
            test_shutdown_expiry_exactly_one_reply;
        ] );
      ( "soak",
        [
          Alcotest.test_case "conservation under faults" `Quick
            test_soak_conservation;
        ] );
    ]
