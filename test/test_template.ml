(* Template engine tests: the Fig. 9 directive set, the inline-map
   extension, escapes, scoping and error reporting. *)

module N = Est.Node

let node_with props groups =
  let n = N.create ~name:"root" ~kind:"Root" in
  List.iter (fun (k, v) -> N.add_prop n k v) props;
  List.iter
    (fun (g, children) ->
      List.iter
        (fun child_props ->
          let c = N.create ~name:"c" ~kind:"Child" in
          List.iter (fun (k, v) -> N.add_prop c k v) child_props;
          N.add_child n ~group:g c)
        children)
    groups;
  n

let render ?maps src node =
  (Template.Eval.render ?maps ~name:"<test>" src node).Template.Eval.stdout

let check = Alcotest.(check string)

(* ---------------- substitution ---------------- *)

let test_substitution () =
  let n = node_with [ ("who", "world") ] [] in
  check "subst" "hello world!\n" (render "hello ${who}!" n)

let test_literal_escape () =
  let n = node_with [ ("x", "1") ] [] in
  check "escape" "literal ${x} and 1\n" (render {|literal $\{x} and ${x}|} n);
  check "plain dollar" "$c insert 1\n" (render "$c insert ${x}" n)

let test_at_escape () =
  check "at" "@foreach is a directive\n"
    (render "@@foreach is a directive" (node_with [] []))

let test_line_joining () =
  let n = node_with [ ("a", "1"); ("b", "2") ] [] in
  check "join" "1 then 2\n" (render "${a} then \\\n${b}" n)

let test_unresolved_variable () =
  match render "${nope}" (node_with [] []) with
  | exception Template.Eval.Eval_error { line = 1; _ } -> ()
  | _ -> Alcotest.fail "expected Eval_error with line info"

(* ---------------- foreach ---------------- *)

let test_foreach_basic () =
  let n =
    node_with []
      [ ("items", [ [ ("v", "a") ]; [ ("v", "b") ]; [ ("v", "c") ] ]) ]
  in
  check "foreach" "-a\n-b\n-c\n" (render "@foreach items\n-${v}\n@end items" n)

let test_foreach_if_more () =
  (* Fig. 9: -ifMore ',' puts the separator after all but the last. *)
  let n = node_with [] [ ("xs", [ [ ("v", "a") ]; [ ("v", "b") ]; [ ("v", "c") ] ]) ] in
  check "ifMore" "a, b, c"
    (render "@foreach xs -ifMore ', '\n${v}${ifMore}\\\n@end xs\n" n)

let test_foreach_bindings () =
  let n = node_with [] [ ("xs", [ [ ("v", "a") ]; [ ("v", "b") ] ]) ] in
  check "index/count" "0/2:a first\n1/2:b last\n"
    (render
       {|@foreach xs
@if ${isFirst}
${index}/${count}:${v} first
@else
${index}/${count}:${v} last
@fi
@end xs|}
       n)

let test_foreach_empty_group () =
  check "empty" "start\nend\n"
    (render "start\n@foreach nothing\n-${v}\n@end nothing\nend" (node_with [] []))

let test_foreach_nested_scope () =
  (* An outer variable stays visible inside a nested loop (Fig. 9 uses
     ${interfaceName} inside methodList). *)
  let outer = N.create ~name:"root" ~kind:"Root" in
  N.add_prop outer "cls" "HdA";
  let m = N.create ~name:"m" ~kind:"M" in
  N.add_prop m "meth" "f";
  N.add_child outer ~group:"ms" m;
  check "outer visible" "HdA::f\n"
    (render "@foreach ms\n${cls}::${meth}\n@end ms" outer)

let test_foreach_shadowing () =
  (* The innermost node wins for a property defined at both levels. *)
  let outer = N.create ~name:"root" ~kind:"Root" in
  N.add_prop outer "v" "outer";
  let c = N.create ~name:"c" ~kind:"C" in
  N.add_prop c "v" "inner";
  N.add_child outer ~group:"g" c;
  check "shadow" "inner\n" (render "@foreach g\n${v}\n@end g" outer)

(* ---------------- conditionals ---------------- *)

let test_if_forms () =
  let n = node_with [ ("a", "x"); ("b", "") ] [] in
  check "eq" "yes\n" (render "@if ${a} == \"x\"\nyes\n@else\nno\n@fi" n);
  check "neq" "yes\n" (render "@if ${a} != \"y\"\nyes\n@fi" n);
  check "nonempty true" "yes\n" (render "@if ${a}\nyes\n@fi" n);
  check "nonempty false" "" (render "@if ${b}\nyes\n@fi" n);
  check "var vs var" "same\n" (render "@if ${a} == ${a}\nsame\n@fi" n);
  (* Fig. 9 writes the mathematical not-equals sign. *)
  check "unicode neq" "yes\n" (render "@if ${a} \xe2\x89\xa0 \"y\"\nyes\n@fi" n)

let test_if_uses_unmapped_value () =
  let maps = Template.Maps.of_list [ ("Shout", String.uppercase_ascii) ] in
  let n = node_with [ ("v", "x") ] [] in
  (* The substitution maps, the condition does not. *)
  check "unmapped cond" "X\n"
    (render ~maps "@foreach none\n@end none\n@if ${v} == \"x\"\n${v:Shout}\n@fi" n)

(* ---------------- maps ---------------- *)

let test_scoped_map () =
  let maps = Template.Maps.of_list [ ("Shout", String.uppercase_ascii) ] in
  let n = node_with [] [ ("xs", [ [ ("v", "a") ]; [ ("v", "b") ] ]) ] in
  check "-map" "A\nB\n" (render ~maps "@foreach xs -map v Shout\n${v}\n@end xs" n)

let test_inline_map_overrides () =
  let maps =
    Template.Maps.of_list
      [ ("Shout", String.uppercase_ascii); ("Quote", fun s -> "'" ^ s ^ "'") ]
  in
  let n = node_with [] [ ("xs", [ [ ("v", "a") ] ]) ] in
  check "inline beats scope" "A 'a'\n"
    (render ~maps "@foreach xs -map v Shout\n${v} ${v:Quote}\n@end xs" n)

let test_unknown_map () =
  let n = node_with [ ("v", "a") ] [] in
  (match render "${v:NoSuchMap}" n with
  | exception Template.Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected unknown-map error")

(* ---------------- openfile ---------------- *)

let test_openfile () =
  let n = node_with [ ("base", "A") ] [] in
  let out =
    Template.Eval.render ~name:"<test>"
      "before\n@openfile ${base}.hh\nheader for ${base}\n@openfile ${base}.cc\nbody\n@openfile ${base}.hh\nmore header\n"
      n
  in
  check "stdout" "before\n" out.Template.Eval.stdout;
  Alcotest.(check (list (pair string string)))
    "files"
    [ ("A.hh", "header for A\nmore header\n"); ("A.cc", "body\n") ]
    out.Template.Eval.files

(* ---------------- parse errors ---------------- *)

let expect_parse_error src =
  match Template.Parse.parse ~name:"<t>" src with
  | exception Template.Parse.Template_error _ -> ()
  | _ -> Alcotest.failf "expected template parse error for %S" src

let test_parse_errors () =
  expect_parse_error "@foreach xs\nno end";
  expect_parse_error "@end xs";
  expect_parse_error "@if ${x}\nno fi";
  expect_parse_error "@else";
  expect_parse_error "@fi";
  expect_parse_error "@foreach xs\n@end ys";
  expect_parse_error "@if ${x} === \"y\"\n@fi";
  expect_parse_error "@wibble stuff";
  expect_parse_error "${unterminated";
  expect_parse_error "@foreach xs -map onlyvar\n@end xs";
  expect_parse_error "@foreach\n@end"

let test_comments_ignored () =
  check "comment" "a\n" (render "@# a comment\na\n@#another" (node_with [] []))

(* The exact template of Fig. 9's flavour: inheritance list with -ifMore
   and -map, defaults via @if — a miniature end-to-end check. *)
let test_fig9_flavour () =
  let maps = Template.Maps.of_list [ ("CPP::MapClassName", Mappings.Common.hd_name) ] in
  let root = N.create ~name:"" ~kind:"Root" in
  let iface = N.create ~name:"A" ~kind:"Interface" in
  N.add_prop iface "interfaceName" "Heidi::A";
  let b1 = N.create ~name:"S" ~kind:"Inherit" in
  N.add_prop b1 "inheritedName" "Heidi::S";
  let b2 = N.create ~name:"T" ~kind:"Inherit" in
  N.add_prop b2 "inheritedName" "Heidi::T";
  N.add_child iface ~group:"inheritedList" b1;
  N.add_child iface ~group:"inheritedList" b2;
  N.add_child root ~group:"interfaceList" iface;
  let tmpl =
    {|@foreach interfaceList -map interfaceName CPP::MapClassName
class ${interfaceName} :
@foreach inheritedList -ifMore ',' -map inheritedName CPP::MapClassName
        virtual public ${inheritedName} ${ifMore}
@end inheritedList
@end interfaceList|}
  in
  check "fig9"
    "class HdA :\n        virtual public HdS ,\n        virtual public HdT \n"
    (render ~maps tmpl root)

(* ---------------- the static checker on seeded-bad templates ----------

   The full checker test matrix lives in test_lint.ml; here we seed the
   exact defect classes the evaluator tests above exercise dynamically and
   assert the checker finds them without an EST. *)

let checker_codes src =
  let reporter = Idl.Diag.reporter () in
  ignore (Analysis.Tmpl_check.check_source reporter ~filename:"t.tmpl" src);
  List.map (fun d -> d.Idl.Diag.code) (Idl.Diag.diagnostics reporter)

let test_checker_seeded () =
  Alcotest.(check (list string)) "unbound var" [ "T202" ]
    (checker_codes "@foreach interfaceList\n${interfaceNam}\n@end interfaceList\n");
  Alcotest.(check (list string)) "unbalanced @if" [ "T201" ]
    (checker_codes "@if ${fileBase}\nx\n");
  Alcotest.(check (list string)) "mismatched @end" [ "T201" ]
    (checker_codes "@foreach interfaceList\nx\n@end methodList\n");
  Alcotest.(check (list string)) "several in one pass" [ "T203"; "T202"; "T205" ]
    (checker_codes
       "@foreach interfaceList -map interfaceName No::Fn\n\
        ${wrong}\n\
        @end interfaceList\n\
        @openfile ${alsoWrong}.hh\n")

let () =
  Alcotest.run "template"
    [
      ( "substitution",
        [
          Alcotest.test_case "basic" `Quick test_substitution;
          Alcotest.test_case "literal ${ escape" `Quick test_literal_escape;
          Alcotest.test_case "@@ escape" `Quick test_at_escape;
          Alcotest.test_case "line joining" `Quick test_line_joining;
          Alcotest.test_case "unresolved variable" `Quick test_unresolved_variable;
        ] );
      ( "foreach",
        [
          Alcotest.test_case "basic" `Quick test_foreach_basic;
          Alcotest.test_case "-ifMore" `Quick test_foreach_if_more;
          Alcotest.test_case "index/count/isFirst/isLast" `Quick test_foreach_bindings;
          Alcotest.test_case "empty group" `Quick test_foreach_empty_group;
          Alcotest.test_case "outer scope visible" `Quick test_foreach_nested_scope;
          Alcotest.test_case "inner shadows outer" `Quick test_foreach_shadowing;
        ] );
      ( "conditionals",
        [
          Alcotest.test_case "forms" `Quick test_if_forms;
          Alcotest.test_case "conditions use unmapped values" `Quick test_if_uses_unmapped_value;
        ] );
      ( "maps",
        [
          Alcotest.test_case "-map scoping" `Quick test_scoped_map;
          Alcotest.test_case "inline map overrides" `Quick test_inline_map_overrides;
          Alcotest.test_case "unknown map" `Quick test_unknown_map;
        ] );
      ( "output",
        [
          Alcotest.test_case "openfile" `Quick test_openfile;
          Alcotest.test_case "comments" `Quick test_comments_ignored;
        ] );
      ( "errors",
        [ Alcotest.test_case "parse errors" `Quick test_parse_errors ] );
      ( "checker",
        [ Alcotest.test_case "seeded defects" `Quick test_checker_seeded ] );
      ("fig9", [ Alcotest.test_case "Fig. 9 flavour" `Quick test_fig9_flavour ]);
    ]
