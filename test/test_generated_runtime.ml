(* End-to-end tests of the *generated* OCaml stubs and skeletons
   (examples/gen/heidi_rmi.ml) against the live runtime — the strongest
   form of codegen test: the compiler's output actually carries remote
   calls. Runs the full matrix of protocols. *)

open Heidi_rmi

let protocols =
  [
    ("text", Orb.Protocol.text);
    ("giop-be", Giop.protocol ());
    ("giop-le", Giop.protocol ~order:Wire.Cdr_codec.Little_endian ());
  ]

let make_camera ?(name = "cam") () =
  let state = ref Stop in
  let zoom_level = ref 0 in
  let hints = ref [] in
  ( {
      Heidi_Camera.attach =
        (fun sink () ->
          if !state = Start then
            raise_heidi_sourcebusy { source = name; retry_after_ms = 42 }
          else (
            ignore sink;
            state := Start));
      describe =
        (fun () -> { name; bitrate_kbps = 500 + (10 * !zoom_level); live = true });
      zoom = (fun level () -> zoom_level := level);
      hint = (fun text () -> hints := text :: !hints);
      get_state = (fun () -> !state);
    },
    hints )

let with_pair protocol f =
  let server = Orb.create ~protocol () in
  Orb.start server;
  let client = Orb.create ~protocol () in
  Fun.protect
    ~finally:(fun () ->
      Orb.shutdown client;
      Orb.shutdown server)
    (fun () -> f ~server ~client)

let test_camera_lifecycle () =
  List.iter
    (fun (pname, protocol) ->
      with_pair protocol (fun ~server ~client ->
          let impl, hints = make_camera () in
          let cam_ref = Orb.export server (Heidi_Camera.skeleton impl) in
          let cam = Heidi_Camera.Stub.of_ref client cam_ref in
          Alcotest.(check bool) (pname ^ " initial state") true
            (Heidi_Camera.Stub.get_state cam () = Stop);
          Heidi_Camera.Stub.attach cam "rtp://x" ();
          Alcotest.(check bool) (pname ^ " started") true
            (Heidi_Camera.Stub.get_state cam () = Start);
          Heidi_Camera.Stub.zoom cam 7 ();
          let info = Heidi_Camera.Stub.describe cam () in
          Alcotest.(check int) (pname ^ " bitrate") 570 info.bitrate_kbps;
          Alcotest.(check bool) (pname ^ " live") true info.live;
          (* oneway hint: poll until the server thread processed it. *)
          Heidi_Camera.Stub.hint cam "pan" ();
          let rec wait n =
            if n > 0 && !hints = [] then (
              Thread.delay 0.01;
              wait (n - 1))
          in
          wait 200;
          Alcotest.(check (list string)) (pname ^ " hint arrived") [ "pan" ] !hints))
    protocols

let test_generated_exception () =
  List.iter
    (fun (pname, protocol) ->
      with_pair protocol (fun ~server ~client ->
          let impl, _ = make_camera ~name:"busycam" () in
          let cam_ref = Orb.export server (Heidi_Camera.skeleton impl) in
          let cam = Heidi_Camera.Stub.of_ref client cam_ref in
          Heidi_Camera.Stub.attach cam "first" ();
          match Heidi_Camera.Stub.attach cam "second" () with
          | exception Orb.Remote_exception { repo_id; payload; codec }
            when repo_id = heidi_sourcebusy_repo_id ->
              let m = decode_heidi_sourcebusy (codec.Wire.Codec.decoder payload) in
              Alcotest.(check string) (pname ^ " source") "busycam" m.source;
              Alcotest.(check int) (pname ^ " retry") 42 m.retry_after_ms
          | _ -> Alcotest.fail "expected SourceBusy"))
    protocols

let test_sequences_and_structs () =
  List.iter
    (fun (pname, protocol) ->
      with_pair protocol (fun ~server ~client ->
          let stored = ref [] in
          let levels = ref [ 1; 2; 3 ] in
          let mixer =
            {
              Heidi_Mixer.get_master_level = (fun () -> 0);
              set_master_level = (fun _ -> ());
              add_input = (fun _ () -> 0);
              add_snapshot = (fun _ () -> 0);
              inputs = (fun () -> !stored);
              levels = (fun () -> !levels);
              set_levels = (fun v () -> levels := v);
            }
          in
          stored :=
            [
              { name = "a"; bitrate_kbps = 1; live = true };
              { name = "b"; bitrate_kbps = 2; live = false };
            ];
          let mixer_ref = Orb.export server (Heidi_Mixer.skeleton mixer) in
          let stub = Heidi_Mixer.Stub.of_ref client mixer_ref in
          let got = Heidi_Mixer.Stub.inputs stub () in
          Alcotest.(check (list string)) (pname ^ " struct seq")
            [ "a"; "b" ]
            (List.map (fun (i : heidi_mediainfo) -> i.name) got);
          Alcotest.(check bool) (pname ^ " bools survive") true
            (List.map (fun (i : heidi_mediainfo) -> i.live) got = [ true; false ]);
          Heidi_Mixer.Stub.set_levels stub [ 9; 8; 7; 6 ] ();
          Alcotest.(check (list int)) (pname ^ " long seq")
            [ 9; 8; 7; 6 ]
            (Heidi_Mixer.Stub.levels stub ());
          (* Empty sequences. *)
          Heidi_Mixer.Stub.set_levels stub [] ();
          Alcotest.(check (list int)) (pname ^ " empty seq") []
            (Heidi_Mixer.Stub.levels stub ())))
    protocols

let test_objref_parameters () =
  with_pair Orb.Protocol.text (fun ~server ~client ->
      let impl, _ = make_camera ~name:"remote-cam" () in
      let cam_ref = Orb.export server (Heidi_Camera.skeleton impl) in
      let seen = ref "" in
      let mixer =
        {
          Heidi_Mixer.get_master_level = (fun () -> 0);
          set_master_level = (fun _ -> ());
          add_input =
            (fun cam () ->
              (* The server-side mixer dials back through the reference. *)
              let stub = Heidi_Camera.Stub.of_ref server cam in
              seen := (Heidi_Camera.Stub.describe stub ()).name;
              1);
          add_snapshot = (fun _ () -> 0);
          inputs = (fun () -> []);
          levels = (fun () -> []);
          set_levels = (fun _ () -> ());
        }
      in
      let mixer_ref = Orb.export server (Heidi_Mixer.skeleton mixer) in
      let stub = Heidi_Mixer.Stub.of_ref client mixer_ref in
      Alcotest.(check int) "result" 1 (Heidi_Mixer.Stub.add_input stub cam_ref ());
      Alcotest.(check string) "called back through the reference" "remote-cam" !seen)

let test_incopy_generated_path () =
  with_pair Orb.Protocol.text (fun ~server ~client ->
      (* The client must itself be reachable for the by-reference
         fallback (the server dials back through the exported ref). *)
      Orb.start client;
      (* Server-side factory: rebuild arriving values locally. *)
      let rebuilt = ref None in
      Orb.Serial.register_factory incopy_registry ~type_id:Heidi_Source.repo_id
        (fun d ->
          let info = get_heidi_mediainfo d in
          rebuilt := Some info;
          let impl =
            {
              Heidi_Source.attach = (fun _ () -> ());
              describe = (fun () -> info);
              get_state = (fun () -> Pause);
            }
          in
          Orb.export server (Heidi_Source.skeleton impl));
      let received_name = ref "" in
      let mixer =
        {
          Heidi_Mixer.get_master_level = (fun () -> 0);
          set_master_level = (fun _ -> ());
          add_input = (fun _ () -> 0);
          add_snapshot =
            (fun src () ->
              let stub = Heidi_Source.Stub.of_ref server src in
              received_name := (Heidi_Source.Stub.describe stub ()).name;
              5);
          inputs = (fun () -> []);
          levels = (fun () -> []);
          set_levels = (fun _ () -> ());
        }
      in
      let mixer_ref = Orb.export server (Heidi_Mixer.skeleton mixer) in
      let stub = Heidi_Mixer.Stub.of_ref client mixer_ref in
      let still = { name = "by-value"; bitrate_kbps = 0; live = false } in
      (* By value: serializer provided. *)
      let local_src =
        Orb.export client
          (Heidi_Source.skeleton
             {
               Heidi_Source.attach = (fun _ () -> ());
               describe = (fun () -> still);
               get_state = (fun () -> Pause);
             })
      in
      let n =
        Heidi_Mixer.Stub.add_snapshot stub
          ~ser_src:(fun e -> put_heidi_mediainfo e still)
          local_src ()
      in
      Alcotest.(check int) "reply" 5 n;
      Alcotest.(check bool) "value was rebuilt server-side" true
        (!rebuilt = Some still);
      Alcotest.(check string) "server saw the copy" "by-value" !received_name;
      (* By reference: no serializer; the server calls back to the client. *)
      rebuilt := None;
      let n2 = Heidi_Mixer.Stub.add_snapshot stub local_src () in
      Alcotest.(check int) "reply" 5 n2;
      Alcotest.(check bool) "no value rebuild in by-ref mode" true (!rebuilt = None))

let test_writable_attribute () =
  (* The non-readonly attribute path: generated get_/set_ stubs drive the
     _get_/_set_ skeleton entries. *)
  List.iter
    (fun (pname, protocol) ->
      with_pair protocol (fun ~server ~client ->
          let master = ref 50 in
          let mixer =
            {
              Heidi_Mixer.get_master_level = (fun () -> !master);
              set_master_level = (fun v -> master := v);
              add_input = (fun _ () -> 0);
              add_snapshot = (fun _ () -> 0);
              inputs = (fun () -> []);
              levels = (fun () -> []);
              set_levels = (fun _ () -> ());
            }
          in
          let stub =
            Heidi_Mixer.Stub.of_ref client (Orb.export server (Heidi_Mixer.skeleton mixer))
          in
          Alcotest.(check int) (pname ^ " get") 50
            (Heidi_Mixer.Stub.get_master_level stub ());
          Heidi_Mixer.Stub.set_master_level stub 75 ();
          Alcotest.(check int) (pname ^ " servant saw set") 75 !master;
          Alcotest.(check int) (pname ^ " get after set") 75
            (Heidi_Mixer.Stub.get_master_level stub ())))
    protocols

let test_enum_wire_values () =
  (* Enum round-trip through each protocol's codec. *)
  List.iter
    (fun (pname, (protocol : Orb.Protocol.t)) ->
      let codec = protocol.Orb.Protocol.codec in
      List.iter
        (fun v ->
          let e = codec.Wire.Codec.encoder () in
          put_heidi_status e v;
          let d = codec.Wire.Codec.decoder (e.Wire.Codec.finish ()) in
          Alcotest.(check bool) pname true (get_heidi_status d = v))
        [ Start; Stop; Pause ];
      (* Out-of-range enum values are rejected. *)
      let e = codec.Wire.Codec.encoder () in
      e.Wire.Codec.put_ulong 99;
      match get_heidi_status (codec.Wire.Codec.decoder (e.Wire.Codec.finish ())) with
      | exception Wire.Codec.Type_error _ -> ()
      | _ -> Alcotest.fail "invalid enum accepted")
    protocols

let () =
  Alcotest.run "generated-runtime"
    [
      ( "generated stubs and skeletons",
        [
          Alcotest.test_case "camera lifecycle" `Quick test_camera_lifecycle;
          Alcotest.test_case "declared exceptions" `Quick test_generated_exception;
          Alcotest.test_case "sequences and structs" `Quick test_sequences_and_structs;
          Alcotest.test_case "object reference parameters" `Quick test_objref_parameters;
          Alcotest.test_case "incopy by value and by reference" `Quick
            test_incopy_generated_path;
          Alcotest.test_case "writable attribute" `Quick test_writable_attribute;
          Alcotest.test_case "enum wire values" `Quick test_enum_wire_values;
        ] );
    ]
