(* Stringified object references (paper Section 3.1). *)

let paper_example = "@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0"

let test_paper_example () =
  let r = Orb.Objref.of_string paper_example in
  Alcotest.(check string) "proto" "tcp" r.Orb.Objref.proto;
  Alcotest.(check string) "host" "galaxy.nec.com" r.Orb.Objref.host;
  Alcotest.(check int) "port" 1234 r.Orb.Objref.port;
  Alcotest.(check string) "oid" "9876" r.Orb.Objref.oid;
  Alcotest.(check string) "type" "IDL:Heidi/A:1.0" r.Orb.Objref.type_id;
  Alcotest.(check string) "print" paper_example (Orb.Objref.to_string r)

let test_type_id_with_colons () =
  (* The repository ID part contains ':' characters; only '#' separates. *)
  let r = Orb.Objref.of_string "@mem:local:7#bootstrap#IDL:X/Y:2.3" in
  Alcotest.(check string) "type" "IDL:X/Y:2.3" r.Orb.Objref.type_id;
  Alcotest.(check string) "oid" "bootstrap" r.Orb.Objref.oid

let test_malformed () =
  List.iter
    (fun s ->
      match Orb.Objref.of_string_opt s with
      | None -> ()
      | Some _ -> Alcotest.failf "expected parse failure for %S" s)
    [
      "";
      "tcp:h:1#o#t";
      "@tcp:h#o#t";
      "@tcp:h:notaport#o#t";
      "@tcp:h:70000#o#t";
      "@tcp:h:1#o";
      "@tcp:h:1#o#t#extra";
      "@:h:1#o#t";
      "@tcp::1#o#t";
    ];
  match Orb.Objref.of_string "@tcp:h#o#t" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_string should raise"

let test_endpoint () =
  let r = Orb.Objref.of_string paper_example in
  Alcotest.(check (triple string string int)) "endpoint"
    ("tcp", "galaxy.nec.com", 1234) (Orb.Objref.endpoint r)

(* ---------------- replicated endpoint sets ---------------- *)

let multi_example = "@tcp:h1:1234,tcp:h2:1234,tcp:h3:4321#9876#IDL:Heidi/A:1.0"

let test_multi_parse_print () =
  let r = Orb.Objref.of_string multi_example in
  Alcotest.(check bool) "is_multi" true (Orb.Objref.is_multi r);
  Alcotest.(check (list (triple string string int)))
    "endpoints"
    [ ("tcp", "h1", 1234); ("tcp", "h2", 1234); ("tcp", "h3", 4321) ]
    (Orb.Objref.endpoints r);
  Alcotest.(check (triple string string int))
    "primary" ("tcp", "h1", 1234) (Orb.Objref.endpoint r);
  Alcotest.(check string) "oid" "9876" r.Orb.Objref.oid;
  Alcotest.(check string) "print" multi_example (Orb.Objref.to_string r)

let test_single_endpoint_unchanged () =
  (* The historical grammar must survive the extension untouched: a
     single-endpoint reference prints with no comma and is not multi. *)
  let r = Orb.Objref.of_string paper_example in
  Alcotest.(check bool) "is_multi" false (Orb.Objref.is_multi r);
  Alcotest.(check (list (triple string string int)))
    "endpoints" [ ("tcp", "galaxy.nec.com", 1234) ] (Orb.Objref.endpoints r);
  Alcotest.(check string) "print" paper_example (Orb.Objref.to_string r)

let test_at_endpoint () =
  let r = Orb.Objref.of_string multi_example in
  let v = Orb.Objref.at_endpoint r ("tcp", "h2", 1234) in
  Alcotest.(check bool) "single view" false (Orb.Objref.is_multi v);
  Alcotest.(check string) "view prints single"
    "@tcp:h2:1234#9876#IDL:Heidi/A:1.0" (Orb.Objref.to_string v);
  Alcotest.(check string) "oid preserved" r.Orb.Objref.oid v.Orb.Objref.oid

let test_multi_malformed () =
  List.iter
    (fun s ->
      match Orb.Objref.of_string_opt s with
      | None -> ()
      | Some _ -> Alcotest.failf "expected parse failure for %S" s)
    [
      (* duplicate endpoint *)
      "@tcp:h1:1#o#t" ^ ",tcp:h1:1#o#t";
      "@tcp:h1:1,tcp:h1:1#o#t";
      (* empty slots in the list *)
      "@tcp:h1:1,#o#t";
      "@,tcp:h1:1#o#t";
      "@tcp:h1:1,,tcp:h2:1#o#t";
      (* malformed member *)
      "@tcp:h1:1,tcp:h2#o#t";
      "@tcp:h1:1,tcp:h2:notaport#o#t";
      "@tcp:h1:1,:h2:1#o#t";
      "@tcp:h1:1,tcp::1#o#t";
    ]

let test_make_multi_validation () =
  let expect_invalid label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  expect_invalid "empty set" (fun () ->
      Orb.Objref.make_multi ~endpoints:[] ~oid:"o" ~type_id:"t");
  expect_invalid "duplicate" (fun () ->
      Orb.Objref.make_multi
        ~endpoints:[ ("tcp", "h", 1); ("tcp", "h", 1) ]
        ~oid:"o" ~type_id:"t");
  expect_invalid "comma in host" (fun () ->
      Orb.Objref.make_multi
        ~endpoints:[ ("tcp", "h,x", 1) ]
        ~oid:"o" ~type_id:"t");
  expect_invalid "hash in proto" (fun () ->
      Orb.Objref.make_multi
        ~endpoints:[ ("t#cp", "h", 1) ]
        ~oid:"o" ~type_id:"t");
  expect_invalid "empty host" (fun () ->
      Orb.Objref.make_multi ~endpoints:[ ("tcp", "", 1) ] ~oid:"o" ~type_id:"t");
  expect_invalid "bad port" (fun () ->
      Orb.Objref.make_multi
        ~endpoints:[ ("tcp", "h", 70000) ]
        ~oid:"o" ~type_id:"t");
  expect_invalid "with_endpoints duplicate" (fun () ->
      Orb.Objref.with_endpoints
        (Orb.Objref.of_string paper_example)
        [ ("tcp", "h", 1); ("tcp", "h", 1) ])

let test_to_string_cache_multi () =
  (* The memoized printer must not conflate a multi-endpoint reference
     with its single-endpoint primary view (same oid/type), nor go
     stale across [with_endpoints]. *)
  let r = Orb.Objref.of_string multi_example in
  let single = Orb.Objref.at_endpoint r (Orb.Objref.endpoint r) in
  ignore (Orb.Objref.to_string r);
  Alcotest.(check string) "single view after multi print"
    "@tcp:h1:1234#9876#IDL:Heidi/A:1.0"
    (Orb.Objref.to_string single);
  Alcotest.(check string) "multi print stable" multi_example
    (Orb.Objref.to_string r);
  let narrowed = Orb.Objref.with_endpoints r [ ("tcp", "h2", 1234) ] in
  Alcotest.(check string) "narrowed prints narrowed"
    "@tcp:h2:1234#9876#IDL:Heidi/A:1.0"
    (Orb.Objref.to_string narrowed);
  (* Round-trip through the cache-heavy path: print, parse, print. *)
  Alcotest.(check string) "reparse stable" multi_example
    (Orb.Objref.to_string (Orb.Objref.of_string (Orb.Objref.to_string r)))

let gen_objref =
  QCheck.Gen.(
    let* proto = oneofl [ "tcp"; "mem"; "udp" ] in
    let* host = oneofl [ "localhost"; "galaxy.nec.com"; "10.0.0.1"; "h-1.example" ] in
    let* port = int_bound 65535 in
    let* oid = oneofl [ "1"; "9876"; "bootstrap"; "a.b.c" ] in
    let* type_id = oneofl [ "IDL:Heidi/A:1.0"; "IDL:X:2.0"; "t" ] in
    return (Orb.Objref.make ~proto ~host ~port ~oid ~type_id))

let roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"objref to_string |> of_string round-trips"
    (QCheck.make ~print:Orb.Objref.to_string gen_objref)
    (fun r -> Orb.Objref.equal r (Orb.Objref.of_string (Orb.Objref.to_string r)))

(* Generated endpoint sets: 1-5 distinct endpoints drawn from a pool
   wide enough to exercise list order, single-member sets, and hosts
   that stress the separator grammar. *)
let gen_multi_objref =
  QCheck.Gen.(
    let gen_ep =
      let* proto = oneofl [ "tcp"; "mem"; "udp" ] in
      let* host = oneofl [ "h1"; "h2"; "10.0.0.1"; "r-3.example"; "local" ] in
      let* port = map (fun p -> p + 1) (int_bound 65534) in
      return (proto, host, port)
    in
    let* n = int_range 1 5 in
    let* eps = list_repeat n gen_ep in
    let distinct = List.sort_uniq compare eps in
    (* Dedup preserving first-occurrence order, so the generator never
       trips make_multi's duplicate rejection. *)
    let ordered =
      List.filter (fun e -> List.mem e distinct)
        (List.fold_left
           (fun acc e -> if List.mem e acc then acc else acc @ [ e ])
           [] eps)
    in
    let* oid = oneofl [ "1"; "9876"; "bootstrap" ] in
    let* type_id = oneofl [ "IDL:Heidi/A:1.0"; "IDL:X:2.0" ] in
    return (Orb.Objref.make_multi ~endpoints:ordered ~oid ~type_id))

let multi_roundtrip_prop =
  QCheck.Test.make ~count:500
    ~name:"multi-endpoint objref round-trips with endpoint set intact"
    (QCheck.make ~print:Orb.Objref.to_string gen_multi_objref)
    (fun r ->
      let r' = Orb.Objref.of_string (Orb.Objref.to_string r) in
      Orb.Objref.equal r r'
      && Orb.Objref.endpoints r = Orb.Objref.endpoints r'
      && Orb.Objref.is_multi r = Orb.Objref.is_multi r')

let () =
  Alcotest.run "objref"
    [
      ( "parse-print",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "colons in type id" `Quick test_type_id_with_colons;
          Alcotest.test_case "malformed references" `Quick test_malformed;
          Alcotest.test_case "endpoint" `Quick test_endpoint;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
      ( "endpoint sets",
        [
          Alcotest.test_case "multi parse-print" `Quick test_multi_parse_print;
          Alcotest.test_case "single endpoint unchanged" `Quick
            test_single_endpoint_unchanged;
          Alcotest.test_case "at_endpoint view" `Quick test_at_endpoint;
          Alcotest.test_case "malformed endpoint sets" `Quick test_multi_malformed;
          Alcotest.test_case "make_multi validation" `Quick
            test_make_multi_validation;
          Alcotest.test_case "to_string cache with multi refs" `Quick
            test_to_string_cache_multi;
          QCheck_alcotest.to_alcotest multi_roundtrip_prop;
        ] );
    ]
