(* Stringified object references (paper Section 3.1). *)

let paper_example = "@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0"

let test_paper_example () =
  let r = Orb.Objref.of_string paper_example in
  Alcotest.(check string) "proto" "tcp" r.Orb.Objref.proto;
  Alcotest.(check string) "host" "galaxy.nec.com" r.Orb.Objref.host;
  Alcotest.(check int) "port" 1234 r.Orb.Objref.port;
  Alcotest.(check string) "oid" "9876" r.Orb.Objref.oid;
  Alcotest.(check string) "type" "IDL:Heidi/A:1.0" r.Orb.Objref.type_id;
  Alcotest.(check string) "print" paper_example (Orb.Objref.to_string r)

let test_type_id_with_colons () =
  (* The repository ID part contains ':' characters; only '#' separates. *)
  let r = Orb.Objref.of_string "@mem:local:7#bootstrap#IDL:X/Y:2.3" in
  Alcotest.(check string) "type" "IDL:X/Y:2.3" r.Orb.Objref.type_id;
  Alcotest.(check string) "oid" "bootstrap" r.Orb.Objref.oid

let test_malformed () =
  List.iter
    (fun s ->
      match Orb.Objref.of_string_opt s with
      | None -> ()
      | Some _ -> Alcotest.failf "expected parse failure for %S" s)
    [
      "";
      "tcp:h:1#o#t";
      "@tcp:h#o#t";
      "@tcp:h:notaport#o#t";
      "@tcp:h:70000#o#t";
      "@tcp:h:1#o";
      "@tcp:h:1#o#t#extra";
      "@:h:1#o#t";
      "@tcp::1#o#t";
    ];
  match Orb.Objref.of_string "@tcp:h#o#t" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_string should raise"

let test_endpoint () =
  let r = Orb.Objref.of_string paper_example in
  Alcotest.(check (triple string string int)) "endpoint"
    ("tcp", "galaxy.nec.com", 1234) (Orb.Objref.endpoint r)

let gen_objref =
  QCheck.Gen.(
    let* proto = oneofl [ "tcp"; "mem"; "udp" ] in
    let* host = oneofl [ "localhost"; "galaxy.nec.com"; "10.0.0.1"; "h-1.example" ] in
    let* port = int_bound 65535 in
    let* oid = oneofl [ "1"; "9876"; "bootstrap"; "a.b.c" ] in
    let* type_id = oneofl [ "IDL:Heidi/A:1.0"; "IDL:X:2.0"; "t" ] in
    return (Orb.Objref.make ~proto ~host ~port ~oid ~type_id))

let roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"objref to_string |> of_string round-trips"
    (QCheck.make ~print:Orb.Objref.to_string gen_objref)
    (fun r -> Orb.Objref.equal r (Orb.Objref.of_string (Orb.Objref.to_string r)))

let () =
  Alcotest.run "objref"
    [
      ( "parse-print",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "colons in type id" `Quick test_type_id_with_colons;
          Alcotest.test_case "malformed references" `Quick test_malformed;
          Alcotest.test_case "endpoint" `Quick test_endpoint;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
    ]
