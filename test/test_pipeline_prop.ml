(* End-to-end pipeline property: for ANY semantically valid IDL module,
   every built-in mapping generates output without raising — the
   whole-compiler counterpart to the per-module property tests.

   A generator of *valid* IDL: names are unique by construction, type
   references only point at previously declared types, sequences appear
   only under typedefs (the documented restriction of the ocaml
   mapping), and interfaces inherit only from previously declared
   interfaces with disjoint operation names. *)

type pool = {
  mutable enums : string list;
  mutable structs : string list;
  mutable aliases : string list;
  mutable interfaces : (string * string list) list;
      (** name, all operation/attribute names (for inheritance clashes) *)
  mutable exceptions : string list;
  mutable counter : int;
}

let fresh pool prefix =
  pool.counter <- pool.counter + 1;
  Printf.sprintf "%s%d" prefix pool.counter

let primitives =
  [ "short"; "long"; "long long"; "unsigned short"; "unsigned long";
    "float"; "double"; "boolean"; "char"; "octet"; "string" ]

(* A type usable in operation/member position (no anonymous sequences). *)
let gen_used_type pool st =
  let candidates =
    List.concat
      [
        List.map (fun p -> p) primitives;
        pool.enums;
        pool.structs;
        pool.aliases;
        List.map fst pool.interfaces;
      ]
  in
  List.nth candidates (Random.State.int st (List.length candidates))

(* Sequence element types: anything already declared or primitive. *)
let gen_elem_type = gen_used_type

let gen_definition pool buf st =
  match Random.State.int st 6 with
  | 0 ->
      let name = fresh pool "E" in
      let members = List.init (1 + Random.State.int st 4) (fun _ -> fresh pool "m") in
      Buffer.add_string buf
        (Printf.sprintf "  enum %s { %s };\n" name (String.concat ", " members));
      pool.enums <- name :: pool.enums
  | 1 ->
      let name = fresh pool "S" in
      let fields =
        List.init (1 + Random.State.int st 3) (fun _ ->
            Printf.sprintf "    %s %s;" (gen_used_type pool st) (fresh pool "f"))
      in
      Buffer.add_string buf
        (Printf.sprintf "  struct %s {\n%s\n  };\n" name (String.concat "\n" fields));
      pool.structs <- name :: pool.structs
  | 2 ->
      let name = fresh pool "T" in
      if Random.State.bool st then
        Buffer.add_string buf
          (Printf.sprintf "  typedef sequence<%s> %s;\n" (gen_elem_type pool st) name)
      else
        Buffer.add_string buf
          (Printf.sprintf "  typedef %s %s;\n" (gen_used_type pool st) name);
      pool.aliases <- name :: pool.aliases
  | 3 ->
      let name = fresh pool "X" in
      Buffer.add_string buf
        (Printf.sprintf "  exception %s { string %s; };\n" name (fresh pool "why"));
      pool.exceptions <- name :: pool.exceptions
  | _ ->
      let name = fresh pool "I" in
      let bases =
        (* Inherit from up to 2 distinct previously declared interfaces. *)
        match List.map fst pool.interfaces with
        | [] -> []
        | available ->
            let n = Random.State.int st (min 3 (List.length available + 1)) in
            let rec pick k acc avail =
              if k = 0 || avail = [] then acc
              else
                let i = Random.State.int st (List.length avail) in
                let b = List.nth avail i in
                pick (k - 1) (b :: acc) (List.filter (fun x -> x <> b) avail)
            in
            pick n [] available
      in
      let ops = ref [] in
      let body = Buffer.create 128 in
      for _ = 0 to Random.State.int st 4 do
        let op = fresh pool "op" in
        ops := op :: !ops;
        let params =
          List.init (Random.State.int st 3) (fun _ ->
              let mode =
                match Random.State.int st 3 with
                | 0 -> "in"
                | 1 -> "incopy"
                | _ -> "in"
              in
              Printf.sprintf "%s %s %s" mode (gen_used_type pool st) (fresh pool "a"))
        in
        let raises =
          match pool.exceptions with
          | x :: _ when Random.State.bool st -> Printf.sprintf " raises (%s)" x
          | _ -> ""
        in
        let ret = if Random.State.bool st then "void" else gen_used_type pool st in
        Buffer.add_string body
          (Printf.sprintf "    %s %s(%s)%s;\n" ret op (String.concat ", " params) raises)
      done;
      (if Random.State.bool st then
         let attr = fresh pool "attr" in
         ops := attr :: !ops;
         Buffer.add_string body
           (Printf.sprintf "    %sattribute %s %s;\n"
              (if Random.State.bool st then "readonly " else "")
              (gen_used_type pool st) attr));
      let inherited_ops =
        List.concat_map
          (fun b -> try List.assoc b pool.interfaces with Not_found -> [])
          bases
      in
      Buffer.add_string buf
        (Printf.sprintf "  interface %s%s {\n%s  };\n" name
           (if bases = [] then "" else " : " ^ String.concat ", " bases)
           (Buffer.contents body));
      pool.interfaces <- (name, !ops @ inherited_ops) :: pool.interfaces

let gen_valid_idl st =
  let pool =
    { enums = []; structs = []; aliases = []; interfaces = []; exceptions = [];
      counter = 0 }
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "module Gen {\n";
  for _ = 0 to 3 + Random.State.int st 8 do
    gen_definition pool buf st
  done;
  Buffer.add_string buf "};\n";
  Buffer.contents buf

let all_mappings_prop =
  QCheck.Test.make ~count:200
    ~name:"every mapping compiles any valid IDL without raising"
    (QCheck.make ~print:(fun s -> s) gen_valid_idl)
    (fun src ->
      (* The property is "no exception": a mapping may legitimately emit
         nothing for IDL without interfaces (java opens files only per
         interface). *)
      List.for_all
        (fun (m : Mappings.Mapping.t) ->
          ignore (Core.Compiler.compile_string ~file_base:"g" ~mapping:m src);
          true)
        Mappings.Registry.all)

let est_dump_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"valid IDL: EST dump round-trips"
    (QCheck.make ~print:(fun s -> s) gen_valid_idl)
    (fun src ->
      let est = Core.Compiler.est_of_string ~file_base:"g" src in
      Est.Node.equal est (Est.Dump.of_text (Est.Dump.to_text est)))

let pretty_reparse_resolve_prop =
  QCheck.Test.make ~count:200
    ~name:"valid IDL: pretty |> reparse |> resolve still succeeds"
    (QCheck.make ~print:(fun s -> s) gen_valid_idl)
    (fun src ->
      let ast = Idl.Parser.parse_string src in
      let printed = Idl.Pretty.to_string ast in
      let sem = Est.Resolve.spec (Idl.Parser.parse_string printed) in
      Est.Sem.all_entities sem <> [])

(* The generated OCaml must at least be syntactically valid OCaml for any
   valid IDL (full typing is exercised by the checked-in module). *)
let ocaml_output_parses_prop =
  let ocaml_mapping = Option.get (Mappings.Registry.find "ocaml") in
  QCheck.Test.make ~count:50 ~name:"valid IDL: ocaml mapping output parses"
    (QCheck.make ~print:(fun s -> s) gen_valid_idl)
    (fun src ->
      let result =
        Core.Compiler.compile_string ~file_base:"g" ~mapping:ocaml_mapping src
      in
      let ml = List.assoc "g_rmi.ml" result.Core.Compiler.files in
      let tmp = Filename.temp_file "gen" ".ml" in
      Fun.protect
        ~finally:(fun () -> Sys.remove tmp)
        (fun () ->
          let oc = open_out tmp in
          output_string oc ml;
          close_out oc;
          Sys.command
            (Printf.sprintf
               "ocamlfind ocamlc -stop-after parsing -impl %s 2>/dev/null"
               (Filename.quote tmp))
          = 0))

let () =
  Alcotest.run "pipeline-prop"
    [
      ( "valid-IDL properties",
        List.map QCheck_alcotest.to_alcotest
          [
            all_mappings_prop;
            est_dump_roundtrip_prop;
            pretty_reparse_resolve_prop;
            ocaml_output_parses_prop;
          ] );
    ]
