(* Benchmark harness: regenerates every table/figure-level artifact of
   the paper's evaluation story, one section per experiment id from
   DESIGN.md / EXPERIMENTS.md.

   Timed experiments use Bechamel (OLS estimate of ns/run); structural
   artifacts (Table 1/2, code-size accounting) are printed directly. *)

open Bechamel
open Toolkit

(* ---------------- bechamel plumbing ---------------- *)

let run_tests (tests : Test.t) : (string * float) list =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name o acc ->
      let est =
        match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> nan
      in
      (name, est) :: acc)
    results []
  |> List.sort compare

let print_results ?(unit_ = "ns/call") results =
  List.iter (fun (name, est) -> Printf.printf "  %-46s %10.1f %s\n" name est unit_) results

let section id title = Printf.printf "\n==== %s: %s ====\n" id title

let table header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    List.iter2 (fun w cell -> Printf.printf "  %-*s" (w + 2) cell) widths row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(* ---------------- shared fixtures ---------------- *)

let heidi_mapping = Option.get (Mappings.Registry.find "heidi-cpp")
let corba_mapping = Option.get (Mappings.Registry.find "corba-cpp")

let map_fn (m : Mappings.Mapping.t) name =
  Option.get (Template.Maps.find m.Mappings.Mapping.maps name)

let fig3_idl =
  {|module Heidi {
      interface S;
      enum Status {Start, Stop};
      typedef sequence<S> SSequence;
      interface S { void ping(); };
      interface A : S {
        void f(in A a);
        void g(incopy S s);
        void p(in long l = 0);
        void q(in Status s = Heidi::Start);
        readonly attribute Status button;
        void s(in boolean b = TRUE);
        void t(in SSequence s);
      };
    };|}

(* ================= T1: Table 1 — IDL-to-C++ type mappings ========== *)

let t1 () =
  section "T1" "Table 1: IDL to C++ type mappings (prescribed vs alternate)";
  let prescribed = map_fn corba_mapping "CORBA::MapType" in
  let alternate = map_fn heidi_mapping "CPP::MapType" in
  let idl_types =
    [ "long"; "boolean"; "float"; "short"; "double"; "char"; "octet"; "string" ]
  in
  table
    [ "IDL Type"; "Prescribed C++ Type"; "Alternate C++ Mapping" ]
    (List.map (fun t -> [ t; prescribed t; alternate t ]) idl_types);
  print_endline "  (paper rows: long/CORBA::Long/long, boolean/CORBA::Boolean/XBool,";
  print_endline "   float/CORBA::Float/float -- reproduced above)"

(* ================= T2: Table 2 — reference usages =================== *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl > 0 && go 0

let t2 () =
  section "T2" "Table 2: CORBA-prescribed vs legacy C++ usages";
  let src = "interface A { void f(in A r); };" in
  let gen mapping =
    (Core.Compiler.compile_string ~file_base:"A" ~mapping src).Core.Compiler.files
  in
  let corba_hh = List.assoc "A.hh" (gen corba_mapping) in
  let heidi_hh = List.assoc "A.hh" (gen heidi_mapping) in
  let grep needle text =
    List.filter (fun l -> contains l needle) (String.split_on_char '\n' text)
  in
  print_endline "  CORBA-prescribed (from corba-cpp output):";
  List.iter (Printf.printf "    %s\n") (grep "_ptr" corba_hh);
  List.iter (Printf.printf "    %s\n") (grep "_var" corba_hh);
  print_endline "  Legacy usage preserved (from heidi-cpp output):";
  List.iter (Printf.printf "    %s\n") (grep "virtual void f" heidi_hh)

(* ================= E1: dispatch strategies ========================= *)

(* Section 2: string-comparison dispatch "can be very expensive for
   interfaces with a large number of methods with long names"; nested
   comparison or a hash table dispatch faster. *)
let e1 () =
  section "E1" "dispatch strategy cost vs interface width (ns per lookup)";
  let sizes = [ 4; 16; 64; 256 ] in
  let mk_names n =
    (* Long names with a shared prefix: the adversarial case for strcmp
       chains the paper describes. *)
    Array.init n (fun i ->
        Printf.sprintf "get_multimedia_stream_configuration_parameter_%04d" i)
  in
  let tests =
    List.concat_map
      (fun n ->
        let names = mk_names n in
        let handlers = Array.to_list (Array.map (fun s -> (s, s)) names) in
        List.map
          (fun strat ->
            let tbl = Orb.Dispatch.compile strat handlers in
            let i = ref 0 in
            Test.make
              ~name:
                (Printf.sprintf "%-6s n=%3d" (Orb.Dispatch.strategy_to_string strat) n)
              (Staged.stage (fun () ->
                   let name = names.(!i) in
                   i := (!i + 7) mod n;
                   ignore (Orb.Dispatch.lookup tbl name))))
          Orb.Dispatch.all_strategies)
      sizes
  in
  print_results ~unit_:"ns/lookup" (run_tests (Test.make_grouped ~name:"dispatch" tests))

(* ================= E2: marshaling codecs =========================== *)

let e2 () =
  section "E2" "marshaling cost: HeidiRMI text codec vs CDR (binary)";
  let text = Wire.Text_codec.codec in
  let cdr = Wire.Cdr_codec.codec Wire.Cdr_codec.Big_endian in
  let module W = Wire.Wvalue in
  let workloads =
    [
      ("16 longs", W.Seq (List.init 16 (fun i -> W.Long (1000000 + i))));
      ("8 strings", W.Seq (List.init 8 (fun i ->
           W.String (Printf.sprintf "control-message-%d" i))));
      ( "8 structs",
        W.Seq
          (List.init 8 (fun i ->
               W.Group [ W.String "media"; W.Long i; W.Bool (i mod 2 = 0); W.Double 0.5 ]))
      );
      ("1024 longs", W.Seq (List.init 1024 (fun i -> W.Long i)));
    ]
  in
  let size codec v =
    let e = codec.Wire.Codec.encoder () in
    W.encode e v;
    String.length (e.Wire.Codec.finish ())
  in
  table
    [ "workload"; "text bytes"; "cdr bytes" ]
    (List.map
       (fun (name, v) ->
         [ name; string_of_int (size text v); string_of_int (size cdr v) ])
       workloads);
  let tests =
    List.concat_map
      (fun (wname, v) ->
        List.concat_map
          (fun (cname, codec) ->
            let payload =
              let e = codec.Wire.Codec.encoder () in
              W.encode e v;
              e.Wire.Codec.finish ()
            in
            [
              Test.make
                ~name:(Printf.sprintf "encode %-10s %-4s" wname cname)
                (Staged.stage (fun () ->
                     let e = codec.Wire.Codec.encoder () in
                     W.encode e v;
                     ignore (e.Wire.Codec.finish ())));
              Test.make
                ~name:(Printf.sprintf "decode %-10s %-4s" wname cname)
                (Staged.stage (fun () ->
                     ignore (W.decode_like (codec.Wire.Codec.decoder payload) v)));
            ])
          [ ("text", text); ("cdr", cdr) ])
      workloads
  in
  print_results ~unit_:"ns/op" (run_tests (Test.make_grouped ~name:"codec" tests))

(* ================= E3: end-to-end call latency ===================== *)

let e3 () =
  section "E3" "remote call round-trip latency";
  let bench_pair name protocol transport host =
    let server = Orb.create ~protocol ~transport ~host () in
    Orb.start server;
    let target =
      Orb.export server
        (Orb.Skeleton.create ~type_id:"IDL:Bench/Echo:1.0"
           [
             ("echo", fun args results ->
                 results.Wire.Codec.put_long (args.Wire.Codec.get_long ()));
           ])
    in
    let client = Orb.create ~protocol ~transport ~host () in
    ignore (Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_long 0));
    let test =
      Test.make ~name
        (Staged.stage (fun () ->
             match
               Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_long 7)
             with
             | Some d -> ignore (d.Wire.Codec.get_long ())
             | None -> assert false))
    in
    ( test,
      fun () ->
        Orb.shutdown client;
        Orb.shutdown server )
  in
  let pairs =
    [
      bench_pair "mem/text" Orb.Protocol.text "mem" "local";
      bench_pair "mem/giop" (Giop.protocol ()) "mem" "local";
      bench_pair "tcp/text" Orb.Protocol.text "tcp" "127.0.0.1";
      bench_pair "tcp/giop" (Giop.protocol ()) "tcp" "127.0.0.1";
    ]
  in
  print_results (run_tests (Test.make_grouped ~name:"call" (List.map fst pairs)));
  List.iter (fun (_, cleanup) -> cleanup ()) pairs

(* ================= E4: template compilation ======================== *)

let e4 () =
  section "E4"
    "two-step codegen: template compile vs cached; EST rebuild vs parse";
  let header_src = List.assoc "header" heidi_mapping.Mappings.Mapping.templates in
  let maps = heidi_mapping.Mappings.Mapping.maps in
  let ast = Idl.Parser.parse_string fig3_idl in
  let sem = Est.Resolve.spec ast in
  let est = Est.Build.of_spec sem in
  Est.Node.add_prop est "fileBase" "A";
  let compiled = Template.Parse.parse ~name:"header" header_src in
  let est_text = Est.Dump.to_text est in
  let tests =
    [
      (* "the first step ... need only be performed once for a particular
         code-generation template" — what re-doing it costs: *)
      Test.make ~name:"step1+step2: parse template every run"
        (Staged.stage (fun () ->
             let t = Template.Parse.parse ~name:"header" header_src in
             ignore (Template.Eval.run ~maps t est)));
      Test.make ~name:"step2 only: pre-compiled template"
        (Staged.stage (fun () -> ignore (Template.Eval.run ~maps compiled est)));
      (* "evaluating a perl program that directly rebuilds the EST ... is
         certainly more efficient than parsing an external representation" *)
      Test.make ~name:"EST: rebuild in-memory (resolve+build)"
        (Staged.stage (fun () -> ignore (Est.Build.of_spec (Est.Resolve.spec ast))));
      Test.make ~name:"EST: parse external representation"
        (Staged.stage (fun () -> ignore (Est.Dump.of_text est_text)));
      Test.make ~name:"front-end: full parse+resolve+build"
        (Staged.stage (fun () ->
             ignore
               (Est.Build.of_spec (Est.Resolve.spec (Idl.Parser.parse_string fig3_idl)))));
    ]
  in
  print_results ~unit_:"ns/run" (run_tests (Test.make_grouped ~name:"template" tests))

(* ================= E5: generated code size ========================= *)

let e5 () =
  section "E5" "generated code size per mapping (the '700 lines of tcl' claim)";
  let idl_suite =
    [
      ("A.idl (Fig. 3)", fig3_idl);
      ( "heidi.idl",
        {|module Heidi {
            enum Status { Start, Stop, Pause };
            struct MediaInfo { string name; long bitrate_kbps; boolean live; };
            typedef sequence<MediaInfo> MediaList;
            typedef sequence<long> LongSeq;
            exception SourceBusy { string source; long retry_after_ms; };
            interface Source {
              void attach(in string sink_url) raises (SourceBusy);
              readonly attribute Status state;
              MediaInfo describe();
            };
            interface Camera : Source { void zoom(in long level); oneway void hint(in string text); };
            interface Mixer {
              long add_input(in Camera cam);
              MediaList inputs();
              LongSeq levels();
              void set_levels(in LongSeq values);
            };
          };|} );
      ("Receiver.idl (Fig. 10)", "interface Receiver { void print(in string text); };");
    ]
  in
  let loc text =
    List.length
      (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text))
  in
  let idl_loc = List.fold_left (fun acc (_, src) -> acc + loc src) 0 idl_suite in
  let rows =
    List.map
      (fun (m : Mappings.Mapping.t) ->
        let total =
          List.fold_left
            (fun acc (_, src) ->
              let r = Core.Compiler.compile_string ~file_base:"x" ~mapping:m src in
              List.fold_left (fun acc (_, c) -> acc + loc c) acc r.Core.Compiler.files)
            0 idl_suite
        in
        [
          m.Mappings.Mapping.name;
          m.Mappings.Mapping.language;
          string_of_int idl_loc;
          string_of_int total;
          Printf.sprintf "%.1fx" (float_of_int total /. float_of_int idl_loc);
        ])
      Mappings.Registry.all
  in
  table [ "mapping"; "language"; "IDL LoC"; "generated LoC"; "expansion" ] rows;
  let tcl = Option.get (Mappings.Registry.find "tcl") in
  let tcl_generated =
    List.fold_left
      (fun acc (_, src) ->
        let r = Core.Compiler.compile_string ~file_base:"x" ~mapping:tcl src in
        List.fold_left (fun acc (_, c) -> acc + loc c) acc r.Core.Compiler.files)
      0 idl_suite
  in
  Printf.printf
    "  tcl: %d generated lines for this suite; the paper reports the\n\
    \  hand-written tcl ORB runtime itself at ~700 lines / two weeks (4.2).\n"
    tcl_generated

(* ================= E6: caches ====================================== *)

let e6 () =
  section "E6" "stub/skeleton/connection caching (Section 3.1)";
  let orb = Orb.create () in
  Orb.start orb;
  let build () =
    Orb.Skeleton.create ~type_id:"IDL:Bench/S:1.0"
      (List.init 8 (fun i ->
           (Printf.sprintf "op%d" i, fun _ (_ : Wire.Codec.encoder) -> ())))
  in
  let key = Orb.servant_key () in
  ignore (Orb.export_cached orb ~key ~type_id:"IDL:Bench/S:1.0" build);
  let skel_tests =
    [
      Test.make ~name:"skeleton: cache hit (export_cached)"
        (Staged.stage (fun () ->
             ignore (Orb.export_cached orb ~key ~type_id:"IDL:Bench/S:1.0" build)));
      Test.make ~name:"skeleton: build + register fresh"
        (Staged.stage (fun () -> ignore (Orb.export orb (build ()))));
    ]
  in
  print_results ~unit_:"ns/export" (run_tests (Test.make_grouped ~name:"skelcache" skel_tests));
  Orb.shutdown orb;
  (* Connection cache: calls on a cached connection vs connecting per
     call — the cost HeidiRMI's connection reuse avoids. *)
  let server = Orb.create ~transport:"tcp" ~host:"127.0.0.1" () in
  Orb.start server;
  let target =
    Orb.export server
      (Orb.Skeleton.create ~type_id:"IDL:Bench/Echo:1.0"
         [ ("ping", fun _ results -> results.Wire.Codec.put_bool true) ])
  in
  let cached_client = Orb.create ~transport:"tcp" ~host:"127.0.0.1" () in
  ignore (Orb.invoke cached_client target ~op:"ping" (fun _ -> ()));
  let conn_tests =
    [
      Test.make ~name:"call: cached TCP connection"
        (Staged.stage (fun () ->
             ignore (Orb.invoke cached_client target ~op:"ping" (fun _ -> ()))));
      Test.make ~name:"call: connect per call (no cache)"
        (Staged.stage (fun () ->
             let c = Orb.create ~transport:"tcp" ~host:"127.0.0.1" () in
             ignore (Orb.invoke c target ~op:"ping" (fun _ -> ()));
             Orb.shutdown c));
    ]
  in
  print_results (run_tests (Test.make_grouped ~name:"conncache" conn_tests));
  Printf.printf "  connections opened by the cached client: %d\n"
    (Orb.connections_opened cached_client);
  Orb.shutdown cached_client;
  Orb.shutdown server

(* ================= E7: interceptors and smart proxies ============== *)

(* Ablation for the Section 5 comparison: what do the expose-a-hook
   customizations (filters/interceptors, smart proxies) cost or save on
   this runtime? *)
let e7 () =
  section "E7" "interceptor overhead and smart-proxy caching (Section 5)";
  let mk_pair ~interceptors =
    let server = Orb.create () in
    Orb.start server;
    let target =
      Orb.export server
        (Orb.Skeleton.create ~type_id:"IDL:Bench/Echo:1.0"
           [
             ("get", fun _ results -> results.Wire.Codec.put_long 42);
           ])
    in
    let client = Orb.create () in
    if interceptors then begin
      (* Five no-op interceptors on each side: the per-hop cost. *)
      for i = 1 to 5 do
        Orb.Interceptor.add (Orb.client_interceptors client)
          (Orb.Interceptor.make (Printf.sprintf "noop-c%d" i));
        Orb.Interceptor.add (Orb.server_interceptors server)
          (Orb.Interceptor.make (Printf.sprintf "noop-s%d" i))
      done
    end;
    ignore (Orb.invoke client target ~op:"get" (fun _ -> ()));
    (server, client, target)
  in
  let s0, c0, t0 = mk_pair ~interceptors:false in
  let s1, c1, t1 = mk_pair ~interceptors:true in
  let proxy = Orb.smart_proxy c0 t0 in
  ignore (Orb.Smart.call proxy ~op:"get" (fun _ -> ()));
  let tests =
    [
      Test.make ~name:"call: no interceptors"
        (Staged.stage (fun () ->
             ignore (Orb.invoke c0 t0 ~op:"get" (fun _ -> ()))));
      Test.make ~name:"call: 5+5 no-op interceptors"
        (Staged.stage (fun () ->
             ignore (Orb.invoke c1 t1 ~op:"get" (fun _ -> ()))));
      Test.make ~name:"smart proxy: cache hit (no network)"
        (Staged.stage (fun () ->
             ignore (Orb.Smart.call proxy ~op:"get" (fun _ -> ()))));
    ]
  in
  print_results (run_tests (Test.make_grouped ~name:"hooks" tests));
  Printf.printf "  smart proxy hits so far: %d (misses %d)\n" (Orb.Smart.hits proxy)
    (Orb.Smart.misses proxy);
  Orb.shutdown c0; Orb.shutdown s0; Orb.shutdown c1; Orb.shutdown s1

(* ================= E3b: payload-size sweep ========================= *)

(* Thread-wakeup-heavy loops confuse OLS sampling, so this sweep times a
   plain loop on the monotonic clock instead of using bechamel. *)
let time_direct name f =
  (* Warm up, then measure ~0.4s. *)
  for _ = 1 to 50 do f () done;
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.4 do
    f ();
    incr n
  done;
  let per = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int !n in
  Printf.printf "  %-46s %10.1f ns/call\n" name per

let e3b () =
  section "E3b" "call latency vs payload size (text protocol, mem transport)";
  let server = Orb.create () in
  Orb.start server;
  let target =
    Orb.export server
      (Orb.Skeleton.create ~type_id:"IDL:Bench/Blob:1.0"
         [
           ("swallow", fun args results ->
               let s = args.Wire.Codec.get_string () in
               results.Wire.Codec.put_long (String.length s));
         ])
  in
  let client = Orb.create () in
  ignore (Orb.invoke client target ~op:"swallow" (fun e -> e.Wire.Codec.put_string ""));
  List.iter
    (fun bytes ->
      let blob = String.make bytes 'x' in
      time_direct
        (Printf.sprintf "payload %6d B" bytes)
        (fun () ->
          ignore
            (Orb.invoke client target ~op:"swallow" (fun e ->
                 e.Wire.Codec.put_string blob))))
    [ 16; 256; 4096; 65536 ];
  Orb.shutdown client;
  Orb.shutdown server

(* ================= E8: fault-rate sweep ============================ *)

(* Robustness economics: what do the fault-tolerance layers (retry
   policy, deadlines) buy under increasing transport fault rates, and
   what do they cost? Seeded plans make every row reproducible. *)
let e8 () =
  section "E8" "call success vs injected fault rate (faulty:mem, seeded plans)";
  let calls = 200 in
  let run_at rate =
    Orb.Transport.mem_reset ();
    let server = Orb.create ~transport:"faulty:mem" ~host:"local" () in
    Orb.start server;
    let target =
      Orb.export server
        (Orb.Skeleton.create ~type_id:"IDL:Bench/Echo:1.0"
           [
             ("echo", fun args results ->
                 results.Wire.Codec.put_long (args.Wire.Codec.get_long ()));
           ])
    in
    let client =
      Orb.create ~transport:"mem" ~host:"local" ~call_timeout:0.05
        ~retry:{ Orb.Retry.default with base_delay = 0.001; max_delay = 0.01 }
        ()
    in
    (* Two fault families: refused connects (transient — the retry
       policy absorbs them) and stalled reply reads (the deadline
       converts a hang into a fast Timeout, never retried). *)
    Orb.Transport.Fault.set_plan
      (Orb.Transport.Fault.seeded ~seed:2000 ~refuse_connect:rate
         ~stall_read:(rate /. 2.)
         ~side:(fun peer -> not (contains peer "(client)"))
         ());
    let ok = ref 0 and failed = ref 0 and timed_out = ref 0 in
    for i = 1 to calls do
      match
        Orb.invoke client target ~op:"echo" (fun e -> e.Wire.Codec.put_long i)
      with
      | Some _ -> incr ok
      | None -> ()
      | exception Orb.Transport.Timeout _ -> incr timed_out
      | exception _ -> incr failed
    done;
    let st = Orb.stats client in
    Orb.Transport.Fault.clear ();
    Orb.shutdown client;
    Orb.shutdown server;
    [
      Printf.sprintf "%.0f%%" (rate *. 100.);
      string_of_int !ok;
      string_of_int !failed;
      string_of_int !timed_out;
      string_of_int st.Orb.retries;
      string_of_int st.Orb.opened;
    ]
  in
  table
    [ "fault rate"; "ok"; "failed"; "timeout"; "retries"; "conns opened" ]
    (List.map run_at [ 0.0; 0.05; 0.1; 0.2 ]);
  Printf.printf
    "  (%d calls per row; retry policy = 3 attempts. Refused connects are\n\
    \  retried (duplicate-safe); stalled replies surface as Timeout within\n\
    \  the 50ms deadline and are never retried.)\n"
    calls

(* ================= E9: observability overhead ====================== *)

(* Trace-off vs trace-on, same workload (mem transport, text protocol):
   what does a fully traced call — client span with four phase timings,
   context propagated on the wire, server span, byte counters, two
   histogram observations, ring-buffer export — cost over the disabled
   baseline (one boolean load per probe point)? Writes BENCH_obs.json
   for the schema-checked smoke test. *)
let e9 ?(out = "BENCH_obs.json") ?(calls = 2000) () =
  section "E9" "observability overhead: trace-off vs trace-on (mem, text)";
  let mk_pair ?server_obs ?client_obs () =
    let server = Orb.create ?obs:server_obs () in
    Orb.start server;
    let target =
      Orb.export server
        (Orb.Skeleton.create ~type_id:"IDL:Bench/Echo:1.0"
           [
             ("echo", fun args results ->
                 results.Wire.Codec.put_string (args.Wire.Codec.get_string ()));
           ])
    in
    let client = Orb.create ?obs:client_obs () in
    (server, client, target)
  in
  let batch client target n =
    let call () =
      ignore
        (Orb.invoke client target ~op:"echo" (fun e ->
             e.Wire.Codec.put_string "ping"))
    in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do call () done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  (* Baseline pair: no obs supplied = the stock disabled instance.
     Traced pair: both sides enabled, spans exported to stock (bounded)
     ring buffers. *)
  let s0, c0, t0 = mk_pair () in
  let server_obs = Obs.create () and client_obs = Obs.create () in
  let client_ring, client_spans = Obs.Sink.ring () in
  Obs.add_sink client_obs client_ring;
  let server_ring, server_spans = Obs.Sink.ring () in
  Obs.add_sink server_obs server_ring;
  let s1, c1, t1 = mk_pair ~server_obs ~client_obs () in
  ignore (batch c0 t0 50);  (* warm connections, caches, code *)
  ignore (batch c1 t1 50);
  (* Interleave off/on batches so clock drift, CPU frequency and GC
     state bias neither side; per side, take the median batch. *)
  let n_batches = 5 in
  let per_batch = max 1 (calls / n_batches) in
  let offs = ref [] and ons = ref [] in
  for _ = 1 to n_batches do
    offs := batch c0 t0 per_batch :: !offs;
    ons := batch c1 t1 per_batch :: !ons
  done;
  let median l =
    let a = List.sort compare l in
    List.nth a (List.length a / 2)
  in
  let off_ns = median !offs and on_ns = median !ons in
  let spans_of obs = (Obs.snapshot obs).Obs.spans_emitted in
  Orb.shutdown c0;
  Orb.shutdown s0;
  Orb.shutdown c1;
  Orb.shutdown s1;
  let overhead_pct = (on_ns -. off_ns) /. off_ns *. 100. in
  (* Cross-check the traces themselves: the last client/server span pair
     must belong to one trace. *)
  let last l = List.nth l (List.length l - 1) in
  let cs = last (client_spans ()) and ss = last (server_spans ()) in
  let shared = cs.Obs.Trace.trace_id = ss.Obs.Trace.trace_id in
  Printf.printf "  %-46s %10.1f ns/call\n" "trace off (disabled obs)" off_ns;
  Printf.printf "  %-46s %10.1f ns/call\n" "trace on (spans + metrics + ring)" on_ns;
  Printf.printf "  overhead: %.1f%%  (client spans %d, server spans %d, shared trace id: %b)\n"
    overhead_pct (spans_of client_obs) (spans_of server_obs) shared;
  let json =
    Obs.Jout.obj
      [
        ("experiment", Obs.Jout.str "E9");
        ("transport", Obs.Jout.str "mem");
        ("protocol", Obs.Jout.str "heidi-text");
        ("calls", Obs.Jout.int calls);
        ("trace_off_ns_per_call", Obs.Jout.num off_ns);
        ("trace_on_ns_per_call", Obs.Jout.num on_ns);
        ("overhead_pct", Obs.Jout.num overhead_pct);
        ("client_spans", Obs.Jout.int (spans_of client_obs));
        ("server_spans", Obs.Jout.int (spans_of server_obs));
        ("shared_trace_id", Obs.Jout.bool shared);
        ("sample_client_span", Obs.Trace.to_json cs);
        ("client_snapshot", Obs.snapshot_to_json (Obs.snapshot client_obs));
      ]
  in
  let oc = open_out out in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* ================= E10: overload policy ============================ *)

(* The server-hardening ablation: the same CPU-bound workload thrown at
   a bounded worker pool (reject admission) and at the paper's
   thread-per-connection model, at increasing client counts. Closed-loop
   clients (next call only after the previous outcome) on the mem
   transport; every outcome is counted, so goodput + rejections +
   failures accounts for every call. Writes BENCH_overload.json for the
   schema-checked smoke test.

   Honesty note: OCaml systhreads share one runtime lock, so total
   CPU throughput is bounded by one core in BOTH configurations — the
   difference under overload is where the queueing happens. The pool
   keeps a bounded queue and sheds the excess (goodput holds, ok-call
   latency stays near workers x service time); thread-per-connection
   accepts everything, so every in-flight call queues inside the
   scheduler and the latency tail grows with the client count. *)
let e10 ?(out = "BENCH_overload.json") ?(duration = 1.5)
    ?(client_counts = [ 4; 8; 32; 64 ]) () =
  section "E10" "overload: bounded worker pool vs thread-per-connection";
  let spin_iters = 1_000_000 in
  let spin () =
    (* Pure OCaml work, no syscalls: deterministic service demand per
       call regardless of clock resolution. *)
    let x = ref 0 in
    for i = 1 to spin_iters do
      x := (!x + (i * i)) land 0xffffff
    done;
    !x
  in
  let service_ms =
    let reps = 20 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (spin ())
    done;
    (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps
  in
  let work_skeleton () =
    Orb.Skeleton.create ~type_id:"IDL:Bench/Work:1.0"
      [ ("work", fun _ results -> results.Wire.Codec.put_long (spin ())) ]
  in
  let servers =
    [
      ( "pool-4x16-reject",
        {
          Orb.default_server_policy with
          pool =
            Some
              {
                Orb.Pool.default_config with
                workers = 4;
                queue_capacity = 16;
                admission = Orb.Pool.Reject;
              };
        } );
      ("thread-per-conn", { Orb.default_server_policy with pool = None });
    ]
  in
  let run_cell (server_name, policy) n_clients =
    Orb.Transport.mem_reset ();
    let server =
      Orb.create ~transport:"mem" ~host:"local" ~server_policy:policy ()
    in
    Orb.start server;
    let target = Orb.export server (work_skeleton ()) in
    let ok = Atomic.make 0
    and rejected = Atomic.make 0
    and failed = Atomic.make 0 in
    let lat_mutex = Mutex.create () in
    let latencies = ref [] in
    let deadline = Unix.gettimeofday () +. duration in
    let threads =
      List.init n_clients (fun _ ->
          Thread.create
            (fun () ->
              let client =
                Orb.create ~transport:"mem" ~host:"local"
                  ~retry:Orb.Retry.none ()
              in
              let mine = ref [] in
              while Unix.gettimeofday () < deadline do
                let t0 = Unix.gettimeofday () in
                match Orb.invoke client target ~op:"work" (fun _ -> ()) with
                | Some _ ->
                    mine := (Unix.gettimeofday () -. t0) :: !mine;
                    Atomic.incr ok
                | None -> Atomic.incr failed
                | exception Orb.System_exception _ ->
                    Atomic.incr rejected;
                    (* Well-behaved client: back off briefly after a
                       rejection instead of hammering the admission
                       check in a tight loop (which would burn the very
                       CPU the workers need and turn the measurement
                       into a self-inflicted DoS). *)
                    Thread.delay 0.002
                | exception _ -> Atomic.incr failed
              done;
              Mutex.lock lat_mutex;
              latencies := List.rev_append !mine !latencies;
              Mutex.unlock lat_mutex;
              Orb.shutdown client)
            ())
    in
    List.iter Thread.join threads;
    Orb.shutdown server;
    let lats = Array.of_list (List.sort compare !latencies) in
    let n_ok = Array.length lats in
    let pct p =
      if n_ok = 0 then 0.
      else lats.(min (n_ok - 1) (int_of_float (float_of_int n_ok *. p))) *. 1000.
    in
    ( server_name,
      n_clients,
      Atomic.get ok,
      Atomic.get rejected,
      Atomic.get failed,
      float_of_int (Atomic.get ok) /. duration,
      pct 0.5,
      pct 0.95,
      (if n_ok = 0 then 0. else lats.(n_ok - 1) *. 1000.) )
  in
  let cells =
    List.concat_map
      (fun server -> List.map (run_cell server) client_counts)
      servers
  in
  table
    [ "server"; "clients"; "ok"; "rejected"; "failed"; "ok/s"; "p50 ms"; "p95 ms"; "max ms" ]
    (List.map
       (fun (srv, n, ok, rej, fail_, ops, p50, p95, mx) ->
         [
           srv;
           string_of_int n;
           string_of_int ok;
           string_of_int rej;
           string_of_int fail_;
           Printf.sprintf "%.0f" ops;
           Printf.sprintf "%.1f" p50;
           Printf.sprintf "%.1f" p95;
           Printf.sprintf "%.1f" mx;
         ])
       cells);
  Printf.printf
    "  (service demand per call: %.2f ms of pure-OCaml CPU; closed-loop\n\
    \  clients, %.2gs per cell. Rejections are answered calls, not drops.)\n"
    service_ms duration;
  let json =
    Obs.Jout.obj
      [
        ("experiment", Obs.Jout.str "E10");
        ("transport", Obs.Jout.str "mem");
        ("protocol", Obs.Jout.str "heidi-text");
        ("duration_s", Obs.Jout.num duration);
        ("service_ms", Obs.Jout.num service_ms);
        ( "cells",
          Obs.Jout.arr
            (List.map
               (fun (srv, n, ok, rej, fail_, ops, p50, p95, mx) ->
                 Obs.Jout.obj
                   [
                     ("server", Obs.Jout.str srv);
                     ("clients", Obs.Jout.int n);
                     ("ok", Obs.Jout.int ok);
                     ("rejected", Obs.Jout.int rej);
                     ("failed", Obs.Jout.int fail_);
                     ("ok_per_s", Obs.Jout.num ops);
                     ("p50_ms", Obs.Jout.num p50);
                     ("p95_ms", Obs.Jout.num p95);
                     ("max_ms", Obs.Jout.num mx);
                   ])
               cells) );
      ]
  in
  let oc = open_out out in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* Client connection multiplexing (DESIGN.md "Client connection model"):
   N closed-loop threads share ONE client ORB — and therefore one cached
   connection — against a servant that sleeps for a fixed service time.
   Sleeping releases the OCaml runtime lock, so throughput depends only
   on how many calls the connection lets in flight: the serialized
   client (max_in_flight = 1) is pinned near 1/service_time no matter
   how many threads pile on, while the demultiplexed client scales until
   it hits the in-flight cap or the thread count. *)
let e11 ?(out = "BENCH_mux.json") ?(duration = 0.4)
    ?(thread_counts = [ 1; 2; 4; 8; 16; 32 ]) () =
  section "E11" "client mux: pipelined calls over one shared connection";
  let nap_ms = 2.0 in
  let nap_skeleton () =
    Orb.Skeleton.create ~type_id:"IDL:Bench/Nap:1.0"
      [
        ( "nap",
          fun _ results ->
            Thread.delay (nap_ms /. 1000.);
            results.Wire.Codec.put_bool true );
      ]
  in
  (* Enough workers that the server is never the bottleneck: the cell
     with 32 threads and the default 32-deep mux needs 32 concurrent
     naps in service. *)
  let wide_pool =
    {
      Orb.default_server_policy with
      pool =
        Some
          (* Sleep-bound servants want way more workers than cores:
             systhreads overlap the naps without burning 48 domains. *)
          {
            Orb.Pool.workers = 48;
            queue_capacity = 64;
            admission = Orb.Pool.Reject;
            backend = Orb.Pool.Systhreads;
          };
    }
  in
  let protocols =
    [ ("heidi-text", fun () -> Orb.Protocol.text); ("giop", fun () -> Giop.protocol ()) ]
  in
  let modes =
    [ ("mux-32", Orb.default_mux); ("serialized", { Orb.max_in_flight = 1 }) ]
  in
  let run_cell (proto_name, mk_protocol) (mode_name, mux) threads =
    Orb.Transport.mem_reset ();
    let protocol = mk_protocol () in
    let server =
      Orb.create ~protocol ~transport:"mem" ~host:"local"
        ~server_policy:wide_pool ()
    in
    Orb.start server;
    let target = Orb.export server (nap_skeleton ()) in
    let client =
      Orb.create ~protocol ~transport:"mem" ~host:"local" ~mux
        ~retry:Orb.Retry.none ()
    in
    (* Warm the connection cache so every thread shares one stream. *)
    ignore (Orb.invoke client target ~op:"nap" (fun _ -> ()));
    let ok = Atomic.make 0 and failed = Atomic.make 0 in
    let deadline = Unix.gettimeofday () +. duration in
    let workers =
      List.init threads (fun _ ->
          Thread.create
            (fun () ->
              while Unix.gettimeofday () < deadline do
                match Orb.invoke client target ~op:"nap" (fun _ -> ()) with
                | Some _ -> Atomic.incr ok
                | None -> Atomic.incr failed
                | exception _ -> Atomic.incr failed
              done)
            ())
    in
    List.iter Thread.join workers;
    let st = Orb.stats client in
    Orb.shutdown client;
    Orb.shutdown server;
    ( proto_name,
      mode_name,
      mux.Orb.max_in_flight,
      threads,
      Atomic.get ok,
      Atomic.get failed,
      float_of_int (Atomic.get ok) /. duration,
      st.Orb.mux_peak_in_flight,
      st.Orb.opened )
  in
  let cells =
    List.concat_map
      (fun proto ->
        List.concat_map
          (fun mode -> List.map (run_cell proto mode) thread_counts)
          modes)
      protocols
  in
  table
    [ "protocol"; "mode"; "threads"; "ok"; "failed"; "ok/s"; "peak in-flight"; "conns" ]
    (List.map
       (fun (proto, mode, _cap, n, ok, fail_, ops, peak, conns) ->
         [
           proto;
           mode;
           string_of_int n;
           string_of_int ok;
           string_of_int fail_;
           Printf.sprintf "%.0f" ops;
           string_of_int peak;
           string_of_int conns;
         ])
       cells);
  Printf.printf
    "  (service time per call: %.1f ms of server-side sleep; closed-loop\n\
    \  threads sharing ONE client connection, %.2gs per cell. The\n\
    \  serialized row is the pre-mux client: one call per roundtrip.)\n"
    nap_ms duration;
  let json =
    Obs.Jout.obj
      [
        ("experiment", Obs.Jout.str "E11");
        ("transport", Obs.Jout.str "mem");
        ("duration_s", Obs.Jout.num duration);
        ("service_ms", Obs.Jout.num nap_ms);
        ( "cells",
          Obs.Jout.arr
            (List.map
               (fun (proto, mode, cap, n, ok, fail_, ops, peak, conns) ->
                 Obs.Jout.obj
                   [
                     ("protocol", Obs.Jout.str proto);
                     ("mode", Obs.Jout.str mode);
                     ("max_in_flight", Obs.Jout.int cap);
                     ("threads", Obs.Jout.int n);
                     ("ok", Obs.Jout.int ok);
                     ("failed", Obs.Jout.int fail_);
                     ("ok_per_s", Obs.Jout.num ops);
                     ("peak_in_flight", Obs.Jout.int peak);
                     ("connections", Obs.Jout.int conns);
                   ])
               cells) );
      ]
  in
  let oc = open_out out in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* ================= E12: replica kill/restart sweep ================== *)

(* Three replicas behind one multi-endpoint reference; closed-loop
   clients hammer it while the timeline kills one replica at ~25% and
   restarts it (same endpoint) at ~50%. Throughput and errors are
   bucketed so the artifact shows the dip, the breaker fencing the dead
   endpoint, and the half-open probe readmitting it — the §E12 numbers
   for "Replication and naming" in DESIGN.md. *)
let e12 ?(out = "BENCH_failover.json") ?(duration = 3.0) ?(clients = 8)
    ?(reset_timeout = 0.5) () =
  section "E12" "replicated endpoints: kill/restart under closed-loop load";
  Orb.Transport.mem_reset ();
  let bucket_s = duration /. 30. in
  let kill_at = 0.25 *. duration and restart_at = 0.5 *. duration in
  let n_replicas = 3 in
  let service_s = 0.0005 in
  let served = Array.init n_replicas (fun _ -> Atomic.make 0) in
  let skeleton i =
    Orb.Skeleton.create ~type_id:"IDL:Bench/Replica:1.0"
      [
        ( "work",
          fun _ results ->
            Atomic.incr served.(i);
            Thread.delay service_s;
            results.Wire.Codec.put_long i );
      ]
  in
  let start_replica i ~port =
    let orb = Orb.create ~transport:"mem" ~host:"local" ~port () in
    Orb.start orb;
    let r = Orb.export_named orb ~oid:"replica" (skeleton i) in
    (orb, r)
  in
  let replicas =
    Array.init n_replicas (fun i -> ref (start_replica i ~port:0))
  in
  let target =
    Orb.Objref.make_multi
      ~endpoints:
        (Array.to_list
           (Array.map (fun rep -> Orb.Objref.endpoint (snd !rep)) replicas))
      ~oid:"replica" ~type_id:"IDL:Bench/Replica:1.0"
  in
  let client =
    Orb.create ~transport:"mem" ~host:"local"
      ~retry:{ Orb.Retry.default with max_attempts = 3; base_delay = 0.002 }
      ~breaker:{ Orb.Breaker.failure_threshold = 1; reset_timeout }
      ()
  in
  let n_buckets = int_of_float (ceil (duration /. bucket_s)) in
  let ok_b = Array.init n_buckets (fun _ -> Atomic.make 0) in
  let failed_b = Array.init n_buckets (fun _ -> Atomic.make 0) in
  let t0 = Unix.gettimeofday () in
  let bucket_of now =
    min (n_buckets - 1) (int_of_float ((now -. t0) /. bucket_s))
  in
  let stop = Atomic.make false in
  let lat_mutex = Mutex.create () in
  let lats = ref [] in
  let workers =
    List.init clients (fun _ ->
        Thread.create
          (fun () ->
            let mine = ref [] in
            while not (Atomic.get stop) do
              let t_start = Unix.gettimeofday () in
              let b =
                match Orb.invoke client target ~op:"work" (fun _ -> ()) with
                | Some _ ->
                    let now = Unix.gettimeofday () in
                    mine := (t_start -. t0, now -. t_start) :: !mine;
                    ok_b
                | None | (exception _) -> failed_b
              in
              Atomic.incr b.(bucket_of (Unix.gettimeofday ()))
            done;
            Mutex.protect lat_mutex (fun () -> lats := !mine @ !lats))
          ())
  in
  let sleep_until t =
    let d = t0 +. t -. Unix.gettimeofday () in
    if d > 0. then Thread.delay d
  in
  sleep_until kill_at;
  let victim_orb, victim_ref = !(replicas.(0)) in
  let _, _, victim_port = Orb.Objref.endpoint victim_ref in
  Orb.shutdown ~drain_deadline:0.05 victim_orb;
  sleep_until restart_at;
  replicas.(0) := start_replica 0 ~port:victim_port;
  sleep_until duration;
  Atomic.set stop true;
  List.iter Thread.join workers;
  let st = Orb.stats client in
  Orb.shutdown client;
  Array.iter (fun rep -> Orb.shutdown (fst !rep)) replicas;
  let rate a i = float_of_int (Atomic.get a.(i)) /. bucket_s in
  let kill_bucket = int_of_float (kill_at /. bucket_s) in
  (* Steady state: the pre-kill window, minus the warmup bucket. *)
  let steady_buckets = List.init (max 1 (kill_bucket - 1)) (fun i -> i + 1) in
  let steady =
    List.fold_left (fun acc i -> acc +. rate ok_b i) 0. steady_buckets
    /. float_of_int (List.length steady_buckets)
  in
  (* Recovery: the best bucket fully inside one breaker half-open
     window after the kill. *)
  let window_end =
    min (n_buckets - 1)
      (int_of_float ((kill_at +. reset_timeout) /. bucket_s))
  in
  let recovery_buckets =
    List.filter (fun i -> i > kill_bucket && i <= window_end)
      (List.init n_buckets Fun.id)
  in
  let recovery =
    List.fold_left (fun acc i -> Float.max acc (rate ok_b i)) 0. recovery_buckets
  in
  let ratio = if steady > 0. then recovery /. steady else 0. in
  let recovered = ratio >= 0.8 in
  let failed_total =
    Array.fold_left (fun acc a -> acc + Atomic.get a) 0 failed_b
  in
  let ok_total = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 ok_b in
  (* p95 latency per phase: pre-kill steady state, the outage (kill to
     restart), and after the restarted replica could rejoin. *)
  let p95_ms phase =
    let xs =
      List.filter_map (fun (t, d) -> if phase t then Some d else None) !lats
    in
    let xs = List.sort compare xs in
    match List.length xs with
    | 0 -> 0.
    | len -> 1000. *. List.nth xs (min (len - 1) (int_of_float (0.95 *. float_of_int len)))
  in
  let p95_steady = p95_ms (fun t -> t >= bucket_s && t < kill_at) in
  let p95_outage = p95_ms (fun t -> t >= kill_at && t < restart_at) in
  let p95_after =
    p95_ms (fun t -> t >= restart_at +. reset_timeout && t < duration)
  in
  table
    [ "phase"; "window"; "ok/s"; "p95 ms" ]
    [
      [ "steady"; Printf.sprintf "buckets 1-%d" (kill_bucket - 1);
        Printf.sprintf "%.0f" steady; Printf.sprintf "%.2f" p95_steady ];
      [ "outage"; "kill..restart"; "-"; Printf.sprintf "%.2f" p95_outage ];
      [ "recovery (best)";
        Printf.sprintf "kill..+%.2gs" reset_timeout;
        Printf.sprintf "%.0f" recovery; "-" ];
      [ "after restart"; "restart+reset.."; "-";
        Printf.sprintf "%.2f" p95_after ];
    ];
  Printf.printf
    "  kill at %.2fs, restart at %.2fs; recovery %.0f%% of steady %s\n\
    \  ok %d, failed %d, failovers %d, forwards %d; served %s\n"
    kill_at restart_at (100. *. ratio)
    (if recovered then "(recovered)" else "(NOT recovered)")
    ok_total failed_total st.Orb.failovers st.Orb.forwards
    (String.concat "/"
       (Array.to_list
          (Array.map (fun a -> string_of_int (Atomic.get a)) served)));
  let json =
    Obs.Jout.obj
      [
        ("experiment", Obs.Jout.str "E12");
        ("transport", Obs.Jout.str "mem");
        ("duration_s", Obs.Jout.num duration);
        ("bucket_s", Obs.Jout.num bucket_s);
        ("replicas", Obs.Jout.int n_replicas);
        ("clients", Obs.Jout.int clients);
        ("kill_at_s", Obs.Jout.num kill_at);
        ("restart_at_s", Obs.Jout.num restart_at);
        ("reset_timeout_s", Obs.Jout.num reset_timeout);
        ("steady_ok_per_s", Obs.Jout.num steady);
        ("recovery_ok_per_s", Obs.Jout.num recovery);
        ("recovery_ratio", Obs.Jout.num ratio);
        ("recovered_within_window", Obs.Jout.bool recovered);
        ("ok_total", Obs.Jout.int ok_total);
        ("failed_total", Obs.Jout.int failed_total);
        ("failovers", Obs.Jout.int st.Orb.failovers);
        ("p95_steady_ms", Obs.Jout.num p95_steady);
        ("p95_outage_ms", Obs.Jout.num p95_outage);
        ("p95_after_restart_ms", Obs.Jout.num p95_after);
        ( "replica_served",
          Obs.Jout.arr
            (Array.to_list
               (Array.map (fun a -> Obs.Jout.int (Atomic.get a)) served)) );
        ( "buckets",
          Obs.Jout.arr
            (List.init n_buckets (fun i ->
                 Obs.Jout.obj
                   [
                     ("t_s", Obs.Jout.num (float_of_int i *. bucket_s));
                     ("ok", Obs.Jout.int (Atomic.get ok_b.(i)));
                     ("failed", Obs.Jout.int (Atomic.get failed_b.(i)));
                   ])) );
      ]
  in
  let oc = open_out out in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* Multicore dispatch (DESIGN.md §11 "Domains vs systhreads"): a
   CPU-bound servant — a checksum over an incopy-style string payload —
   behind the worker pool, swept over worker counts with both backends.
   Domain workers execute dispatches on separate cores, so throughput
   should scale with the worker count up to the machine's cores;
   systhread workers share one runtime lock, so their arm stays flat no
   matter how many workers the pool has. The artifact records the
   machine's core count: the schema check asserts the >= 2.5x 4-domain
   scaling only when the host actually has >= 4 cores, and always
   asserts structure and call conservation (a 1-core CI box can verify
   correctness but cannot exhibit parallelism). *)
let e13 ?(out = "BENCH_multicore.json") ?(duration = 1.5)
    ?(worker_counts = [ 1; 2; 4 ]) ?(payload_kb = 8) ?(passes = 120) () =
  section "E13" "multicore dispatch: domain workers vs systhread flatline";
  let payload = String.init (payload_kb * 1024) (fun i -> Char.chr (i land 0xff)) in
  (* Adler-ish rolling checksum, [passes] sweeps over the payload: pure
     OCaml arithmetic, no allocation in the loop, deterministic CPU
     demand per call on every backend. *)
  let checksum s =
    let a = ref 1 and b = ref 0 in
    for _ = 1 to passes do
      for i = 0 to String.length s - 1 do
        a := (!a + Char.code (String.unsafe_get s i)) land 0xffffff;
        b := (!b + !a) land 0xffffff
      done
    done;
    (!b lsl 4) lxor !a
  in
  let service_ms =
    let reps = 5 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (checksum payload)
    done;
    (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps
  in
  let checksum_skeleton () =
    Orb.Skeleton.create ~type_id:"IDL:Bench/Checksum:1.0"
      [
        ( "checksum",
          fun args results ->
            results.Wire.Codec.put_long (checksum (args.Wire.Codec.get_string ()))
        );
      ]
  in
  let cores = Domain.recommended_domain_count () in
  let run_cell backend_name backend workers =
    Orb.Transport.mem_reset ();
    let policy =
      {
        Orb.default_server_policy with
        pool =
          Some
            { Orb.Pool.default_config with workers; queue_capacity = 64; backend };
      }
    in
    let server =
      Orb.create ~transport:"mem" ~host:"local" ~server_policy:policy ()
    in
    Orb.start server;
    let target = Orb.export server (checksum_skeleton ()) in
    let ok = Atomic.make 0 and failed = Atomic.make 0 in
    (* Closed loop with more clients than workers: the pool, not the
       offered load, is the bottleneck in every cell. *)
    let n_clients = (2 * workers) + 2 in
    let deadline = Unix.gettimeofday () +. duration in
    let threads =
      List.init n_clients (fun _ ->
          Thread.create
            (fun () ->
              let client =
                Orb.create ~transport:"mem" ~host:"local"
                  ~retry:Orb.Retry.none ()
              in
              while Unix.gettimeofday () < deadline do
                match
                  Orb.invoke client target ~op:"checksum" (fun e ->
                      e.Wire.Codec.put_string payload)
                with
                | Some _ -> Atomic.incr ok
                | None -> Atomic.incr failed
                | exception Orb.System_exception _ ->
                    (* Reject admission under saturation: back off. *)
                    Thread.delay 0.002
                | exception _ -> Atomic.incr failed
              done;
              Orb.shutdown client)
            ())
    in
    List.iter Thread.join threads;
    Orb.shutdown server;
    ( backend_name,
      workers,
      n_clients,
      Atomic.get ok,
      Atomic.get failed,
      float_of_int (Atomic.get ok) /. duration )
  in
  let cells =
    List.concat_map
      (fun w -> [ run_cell "domains" Orb.Pool.Domains w ])
      worker_counts
    @ List.concat_map
        (fun w -> [ run_cell "systhreads" Orb.Pool.Systhreads w ])
        worker_counts
  in
  let base =
    List.find_map
      (fun (b, w, _, _, _, ops) ->
        if b = "domains" && w = 1 then Some ops else None)
      cells
  in
  table
    [ "backend"; "workers"; "clients"; "ok"; "failed"; "ok/s"; "vs 1-domain" ]
    (List.map
       (fun (b, w, n, ok, fail_, ops) ->
         [
           b;
           string_of_int w;
           string_of_int n;
           string_of_int ok;
           string_of_int fail_;
           Printf.sprintf "%.0f" ops;
           (match base with
           | Some base when base > 0. -> Printf.sprintf "%.2fx" (ops /. base)
           | _ -> "-");
         ])
       cells);
  Printf.printf
    "  (service demand per call: %.2f ms of pure-OCaml checksum over a\n\
    \  %d KiB incopy payload; closed-loop clients, %.2gs per cell;\n\
    \  this host reports %d recommended domain(s) — scaling needs >= 4.)\n"
    service_ms payload_kb duration cores;
  let json =
    Obs.Jout.obj
      [
        ("experiment", Obs.Jout.str "E13");
        ("transport", Obs.Jout.str "mem");
        ("protocol", Obs.Jout.str "heidi-text");
        ("duration_s", Obs.Jout.num duration);
        ("payload_kb", Obs.Jout.int payload_kb);
        ("service_ms", Obs.Jout.num service_ms);
        ("cores", Obs.Jout.int cores);
        ( "cells",
          Obs.Jout.arr
            (List.map
               (fun (b, w, n, ok, fail_, ops) ->
                 Obs.Jout.obj
                   [
                     ("backend", Obs.Jout.str b);
                     ("workers", Obs.Jout.int w);
                     ("clients", Obs.Jout.int n);
                     ("ok", Obs.Jout.int ok);
                     ("failed", Obs.Jout.int fail_);
                     ("ok_per_s", Obs.Jout.num ops);
                   ])
               cells) );
      ]
  in
  let oc = open_out out in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* ================= E14: deadline propagation under saturation ====== *)

(* An open-loop saturation sweep over one small pool (2 workers x 10 ms
   sleep service = ~200 calls/s capacity). Every call carries the same
   client deadline; the only variable is whether the client propagates
   the remaining budget on the wire. Offered load is paced by a global
   ticket counter (senders sleep until their ticket's fire time), so the
   generator keeps offering at the target rate even while earlier calls
   are stuck in the server's queue — the regime where the two arms
   diverge: without propagation the workers burn their whole service
   time on requests whose caller has already timed out; with it the
   expired backlog is shed at ~no cost and the freed capacity goes to
   requests that can still make their deadline. Goodput = replies that
   arrived within the deadline (the invoke timeout enforces it). *)
let e14 ?(out = "BENCH_deadline.json") ?(duration = 2.0)
    ?(multipliers = [ 1; 2; 4; 8 ]) () =
  section "E14" "end-to-end deadlines: goodput with and without propagation";
  let service_s = 0.010 in
  let deadline_s = 0.030 in
  let workers = 2 in
  let capacity = float_of_int workers /. service_s in
  let senders = 64 in
  let executed = Atomic.make 0 in
  let nap_skeleton () =
    Orb.Skeleton.create ~type_id:"IDL:Bench/Deadline:1.0"
      [
        ( "work",
          fun _ results ->
            Atomic.incr executed;
            Thread.delay service_s;
            results.Wire.Codec.put_string "ok" );
      ]
  in
  let run_cell ~propagate mult =
    Orb.Transport.mem_reset ();
    Atomic.set executed 0;
    let server =
      Orb.create ~transport:"mem" ~host:"local"
        ~server_policy:
          {
            Orb.default_server_policy with
            pool =
              Some
                {
                  Orb.Pool.default_config with
                  workers;
                  queue_capacity = 512;
                  admission = Orb.Pool.Reject;
                };
          }
        ()
    in
    Orb.start server;
    let target = Orb.export server (nap_skeleton ()) in
    let rate = float_of_int mult *. capacity in
    let total = int_of_float (rate *. duration) in
    let ticket = Atomic.make 0 in
    let ok = Atomic.make 0
    and timeout = Atomic.make 0
    and shed = Atomic.make 0
    and failed = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init senders (fun _ ->
          Thread.create
            (fun () ->
              (* One client ORB (one connection) per sender: calls are
                 serial per connection, so a deadline expiring mid-reply
                 tears down only the timed-out caller's own connection —
                 shared-mux collateral would charge one call's expiry to
                 its innocent neighbours and mask the server-side
                 effect under saturation. *)
              let client =
                Orb.create ~transport:"mem" ~host:"local"
                  ~retry:Orb.Retry.none ~propagate_deadlines:propagate ()
              in
              let rec loop () =
                let i = Atomic.fetch_and_add ticket 1 in
                if i < total then begin
                  let fire_at = t0 +. (float_of_int i /. rate) in
                  let d = fire_at -. Unix.gettimeofday () in
                  if d > 0. then Thread.delay d;
                  (match
                     Orb.invoke client target ~op:"work" ~timeout:deadline_s
                       (fun _ -> ())
                   with
                  | Some _ -> Atomic.incr ok
                  | None -> Atomic.incr failed
                  | exception Orb.Transport.Timeout _ -> Atomic.incr timeout
                  | exception Orb.System_exception _ -> Atomic.incr shed
                  | exception _ -> Atomic.incr failed);
                  loop ()
                end
              in
              loop ();
              Orb.shutdown client)
            ())
    in
    List.iter Thread.join threads;
    let elapsed = Unix.gettimeofday () -. t0 in
    let st = Orb.stats server in
    Orb.shutdown server;
    ( (if propagate then "on" else "off"),
      mult,
      rate,
      Atomic.get ok,
      Atomic.get timeout,
      Atomic.get shed,
      Atomic.get failed,
      float_of_int (Atomic.get ok) /. elapsed,
      Atomic.get executed,
      st.Orb.expired_pre_admission,
      st.Orb.expired_in_queue,
      st.Orb.rejected )
  in
  let cells =
    List.concat_map
      (fun propagate -> List.map (run_cell ~propagate) multipliers)
      [ true; false ]
  in
  table
    [
      "propagation"; "load"; "offered/s"; "ok"; "timeout"; "shed"; "goodput/s";
      "executed"; "exp_pre"; "exp_queue"; "rejected";
    ]
    (List.map
       (fun (arm, m, rate, ok, tmo, shed, _fail, gput, exec, pre, q, rej) ->
         [
           arm;
           Printf.sprintf "%dx" m;
           Printf.sprintf "%.0f" rate;
           string_of_int ok;
           string_of_int tmo;
           string_of_int shed;
           Printf.sprintf "%.0f" gput;
           string_of_int exec;
           string_of_int pre;
           string_of_int q;
           string_of_int rej;
         ])
       cells);
  Printf.printf
    "  (open-loop: %d senders paced to load x %.0f calls/s capacity; every\n\
    \  call has a %.0f ms deadline over %.0f ms of sleep service. \"executed\"\n\
    \  counts servant runs — off-arm executions above ok-count are capacity\n\
    \  burned on already-dead requests; the on-arm sheds them in queue.)\n"
    senders capacity (deadline_s *. 1000.) (service_s *. 1000.);
  let json =
    Obs.Jout.obj
      [
        ("experiment", Obs.Jout.str "E14");
        ("transport", Obs.Jout.str "mem");
        ("duration_s", Obs.Jout.num duration);
        ("service_ms", Obs.Jout.num (service_s *. 1000.));
        ("deadline_ms", Obs.Jout.num (deadline_s *. 1000.));
        ("capacity_per_s", Obs.Jout.num capacity);
        ( "cells",
          Obs.Jout.arr
            (List.map
               (fun (arm, m, rate, ok, tmo, shed, fail_, gput, exec, pre, q, rej) ->
                 Obs.Jout.obj
                   [
                     ("propagation", Obs.Jout.str arm);
                     ("multiplier", Obs.Jout.int m);
                     ("offered_per_s", Obs.Jout.num rate);
                     ("ok", Obs.Jout.int ok);
                     ("timeout", Obs.Jout.int tmo);
                     ("shed", Obs.Jout.int shed);
                     ("failed", Obs.Jout.int fail_);
                     ("goodput_per_s", Obs.Jout.num gput);
                     ("executed", Obs.Jout.int exec);
                     ("expired_pre_admission", Obs.Jout.int pre);
                     ("expired_in_queue", Obs.Jout.int q);
                     ("rejected", Obs.Jout.int rej);
                   ])
               cells) );
      ]
  in
  let oc = open_out out in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* ================= E15: codec sweep ================================ *)

(* The compact-codec claim (paper Section 5: "for many applications, a
   simple protocol or messaging format may suffice" — and a cheaper one
   pays at every call): the same echo workload under the heidi-text,
   GIOP and HCX envelopes, swept across payload sizes. Bytes are read
   from the Obs channel meter, so the figure is what actually crossed
   the transport, framing included. Calls/s is a monotonic-clock loop
   (see E3b on OLS and thread wakeups). Writes BENCH_codec.json for the
   schema-checked smoke test, which pins HCX's bytes/call strictly
   below heidi-text's at every payload size. *)
let e15 ?(out = "BENCH_codec.json") ?(measure_s = 0.4)
    ?(sizes = [ 16; 256; 4096; 65536 ]) () =
  section "E15" "codec sweep: bytes/call and calls/s (hcx vs text vs giop, mem)";
  let protos =
    [
      ("heidi-text", Orb.Protocol.text);
      ("giop-be", Giop.protocol ());
      ("hcx", Orb.Protocol.hcx);
    ]
  in
  let blob_skeleton () =
    Orb.Skeleton.create ~type_id:"IDL:Bench/Blob:1.0"
      [
        ("swallow", fun args results ->
            let s = args.Wire.Codec.get_string () in
            results.Wire.Codec.put_long (String.length s));
      ]
  in
  let run_row (pname, protocol) size =
    Orb.Transport.mem_reset ();
    let server = Orb.create ~protocol ~transport:"mem" ~host:"local" () in
    Orb.start server;
    let target = Orb.export server (blob_skeleton ()) in
    let obs = Obs.create () in
    let client = Orb.create ~protocol ~transport:"mem" ~host:"local" ~obs () in
    let blob = String.make size 'a' in
    let call () =
      ignore
        (Orb.invoke client target ~op:"swallow" (fun e ->
             e.Wire.Codec.put_string blob))
    in
    for _ = 1 to 20 do call () done;
    (* bytes/call: meter delta over a fixed batch. Plain endpoint labels
       only — the per-codec twins double-account the same bytes. *)
    let wire_bytes () =
      List.fold_left
        (fun acc e ->
          if String.starts_with ~prefix:"mem:" e.Obs.Metrics.endpoint then
            acc + e.Obs.Metrics.bytes_in + e.Obs.Metrics.bytes_out
          else acc)
        0
        (Obs.snapshot obs).Obs.metrics.Obs.Metrics.endpoints
    in
    let before = wire_bytes () in
    let batch = 50 in
    for _ = 1 to batch do call () done;
    let bytes_per_call =
      float_of_int (wire_bytes () - before) /. float_of_int batch
    in
    let t0 = Unix.gettimeofday () in
    let n = ref 0 in
    while Unix.gettimeofday () -. t0 < measure_s do
      call ();
      incr n
    done;
    let elapsed = Unix.gettimeofday () -. t0 in
    let ns_per_call = elapsed *. 1e9 /. float_of_int !n in
    let calls_per_s = float_of_int !n /. elapsed in
    Orb.shutdown client;
    Orb.shutdown server;
    (pname, size, bytes_per_call, ns_per_call, calls_per_s)
  in
  let rows =
    List.concat_map (fun proto -> List.map (run_row proto) sizes) protos
  in
  table
    [ "protocol"; "payload B"; "bytes/call"; "ns/call"; "calls/s" ]
    (List.map
       (fun (p, size, bpc, ns, cps) ->
         [
           p;
           string_of_int size;
           Printf.sprintf "%.0f" bpc;
           Printf.sprintf "%.0f" ns;
           Printf.sprintf "%.0f" cps;
         ])
       rows);
  Printf.printf
    "  (bytes/call from the Obs channel meter over %d metered calls per\n\
    \  row: request + reply, envelope + payload + framing. HCX varints\n\
    \  and byte-count framing vs text tokens vs GIOP's 12-byte header\n\
    \  and CDR padding.)\n"
    50;
  let json =
    Obs.Jout.obj
      [
        ("experiment", Obs.Jout.str "E15");
        ("transport", Obs.Jout.str "mem");
        ("measure_s", Obs.Jout.num measure_s);
        ("payload_sizes", Obs.Jout.arr (List.map Obs.Jout.int sizes));
        ( "rows",
          Obs.Jout.arr
            (List.map
               (fun (p, size, bpc, ns, cps) ->
                 Obs.Jout.obj
                   [
                     ("protocol", Obs.Jout.str p);
                     ("payload_bytes", Obs.Jout.int size);
                     ("bytes_per_call", Obs.Jout.num bpc);
                     ("ns_per_call", Obs.Jout.num ns);
                     ("calls_per_s", Obs.Jout.num cps);
                   ])
               rows) );
      ]
  in
  let oc = open_out out in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* ================= F-series: figure regeneration pointers ========== *)

let figures () =
  section "F3/F8/F9/F10" "figure regeneration (golden-tested elsewhere)";
  print_endline
    "  Fig. 3 header     : dune exec examples/quickstart.exe   (test: codegen-heidi)";
  print_endline
    "  Fig. 8 EST dump   : dune exec bin/idlc.exe -- examples/idl/A.idl --dump-est";
  print_endline
    "  Fig. 9 template   : lib/mappings/heidi_cpp.ml header template (test: template)";
  print_endline
    "  Fig. 10 tcl code  : dune exec bin/idlc.exe -- examples/idl/Receiver.idl -m tcl";
  print_endline
    "  Figs. 4-5 flow    : test/test_orb.ml interaction trace; examples/heidi_media.exe"

let () =
  match Sys.argv with
  | [| _; "--e9"; out |] ->
      (* Full E9 only: the trace-overhead measurement at the real call
         quota (the §E9 no-regression pin for Obs-layer changes). *)
      e9 ~out ()
  | [| _; "--e9-smoke"; out |] ->
      (* CI smoke mode (`dune build @bench-smoke`): run only E9 with a
         tiny call quota, writing [out] for the schema check. *)
      e9 ~out ~calls:40 ()
  | [| _; "--e10"; out |] ->
      (* Full E10 only: the overload ablation at real duration and
         client counts, without the rest of the bench suite. *)
      e10 ~out ()
  | [| _; "--e10-smoke"; out |] ->
      (* E10 with tiny cells: exercises both serving models end to end
         and writes a schema-checkable artifact in about a second. *)
      e10 ~out ~duration:0.25 ~client_counts:[ 2; 6 ] ()
  | [| _; "--e11"; out |] ->
      (* Full E11 only: the client-mux concurrency sweep. *)
      e11 ~out ()
  | [| _; "--e11-smoke"; out |] ->
      (* E11 with tiny cells: both codecs x both client modes at 1 and 8
         threads — enough to exercise the demux end to end and let the
         schema check assert the >= 2x scaling invariant. *)
      e11 ~out ~duration:0.2 ~thread_counts:[ 1; 8 ] ()
  | [| _; "--e12"; out |] ->
      (* Full E12 only: the replica kill/restart sweep. *)
      e12 ~out ()
  | [| _; "--e13"; out |] ->
      (* Full E13 only: the multicore dispatch sweep at real duration
         and payload (the BENCH_multicore.json artifact). *)
      e13 ~out ()
  | [| _; "--e13-smoke"; out |] ->
      (* E13 with a small payload and short cells: exercises both pool
         backends end to end (domain spawn/join, cancel-on-stop, the
         domain-keyed checker) and writes a schema-checkable artifact.
         The scaling assertion self-gates on the host's core count. *)
      e13 ~out ~duration:0.2 ~worker_counts:[ 1; 4 ] ~payload_kb:2 ~passes:30 ()
  | [| _; "--e14"; out |] ->
      (* Full E14 only: the deadline-propagation saturation sweep (the
         BENCH_deadline.json artifact). *)
      e14 ~out ()
  | [| _; "--e14-smoke"; out |] ->
      (* E14 with short cells at the two interesting loads: unsaturated
         (1x) and deep saturation (4x) — enough for the schema check to
         assert that propagation never loses goodput at saturation. *)
      e14 ~out ~duration:0.4 ~multipliers:[ 1; 4 ] ()
  | [| _; "--e15"; out |] ->
      (* Full E15 only: the codec sweep (the BENCH_codec.json artifact
         behind the §E15 table in EXPERIMENTS.md). *)
      e15 ~out ()
  | [| _; "--e15-smoke"; out |] ->
      (* E15 with short timing loops at the two interesting sizes; the
         bytes/call figures are exact at any quota, so the schema check
         still pins HCX below heidi-text at every size. *)
      e15 ~out ~measure_s:0.05 ~sizes:[ 16; 4096 ] ()
  | [| _; "--e12-smoke"; out |] ->
      (* E12 on a compressed timeline: one kill, one restart, a breaker
         window short enough that recovery is measurable inside a
         second — lets the schema check assert the >= 80% recovery
         invariant on every test run. *)
      e12 ~out ~duration:1.0 ~clients:4 ~reset_timeout:0.2 ()
  | _ ->
      print_endline "Reproduction benches: Customizing IDL Mappings and ORB Protocols";
      print_endline "(Welling & Ott, Middleware 2000) -- see EXPERIMENTS.md for analysis";
      t1 ();
      t2 ();
      e1 ();
      e2 ();
      e3 ();
      e4 ();
      e5 ();
      e6 ();
      e7 ();
      e8 ();
      e3b ();
      e9 ();
      e10 ();
      e11 ();
      e12 ();
      e13 ();
      e14 ();
      e15 ();
      figures ();
      print_endline "\nAll benches complete."
