(* TCP chat: two address spaces over real sockets, with callbacks.

   A chat room server and two clients run as three ORBs ("address
   spaces") on loopback TCP. Clients register listener objects with the
   room; the room calls *back* through those references when a message is
   posted — object references flow in both directions, exactly as in
   HeidiRMI where "an object reference is composed of ... a means to open
   a communication channel to the object" (Section 3.1). Connection
   caching keeps one socket per peer pair.

   Run with: dune exec examples/tcp_chat.exe *)

let room_type = "IDL:Chat/Room:1.0"
let listener_type = "IDL:Chat/Listener:1.0"

(* Hand-written skeleton/stub pair for the listener (the generated-code
   path is shown in examples/heidi_media.ml; this one shows the raw
   runtime API). *)
let listener_skel ~name ~received =
  Orb.Skeleton.create ~type_id:listener_type
    [
      ("notify", fun args _results ->
          let from = args.Wire.Codec.get_string () in
          let text = args.Wire.Codec.get_string () in
          received := (from, text) :: !received;
          Printf.printf "  [%s] %s: %s\n%!" name from text);
    ]

let notify orb listener ~from ~text =
  ignore
    (Orb.invoke orb listener ~op:"notify" (fun e ->
         e.Wire.Codec.put_string from;
         e.Wire.Codec.put_string text))

let room_skel room_orb =
  let listeners : Orb.Objref.t list ref = ref [] in
  Orb.Skeleton.create ~type_id:room_type
    [
      ("join", fun args results ->
          (match Orb.Serial.get_byref args with
          | Some l -> listeners := !listeners @ [ l ]
          | None -> raise (Wire.Codec.Type_error "nil listener"));
          results.Wire.Codec.put_long (List.length !listeners));
      ("post", fun args _results ->
          let from = args.Wire.Codec.get_string () in
          let text = args.Wire.Codec.get_string () in
          List.iter (fun l -> notify room_orb l ~from ~text) !listeners);
    ]

let () =
  (* The room: a TCP server on an OS-assigned loopback port. *)
  let room_orb = Orb.create ~transport:"tcp" ~host:"127.0.0.1" () in
  Orb.start room_orb;
  let room = Orb.export room_orb (room_skel room_orb) in
  Printf.printf "chat room at %s\n\n" (Orb.Objref.to_string room);

  (* Two clients, each also a server (for its listener callback). *)
  let mk_client name =
    let orb = Orb.create ~transport:"tcp" ~host:"127.0.0.1" () in
    Orb.start orb;
    let received = ref [] in
    let listener = Orb.export orb (listener_skel ~name ~received) in
    (orb, listener, received)
  in
  let alice_orb, alice_listener, alice_recv = mk_client "alice's screen" in
  let bob_orb, bob_listener, bob_recv = mk_client "bob's screen" in

  let join orb listener =
    match
      Orb.invoke orb room ~op:"join" (fun e ->
          Orb.Serial.put_byref e (Some listener))
    with
    | Some d -> d.Wire.Codec.get_long ()
    | None -> assert false
  in
  Printf.printf "alice joins -> %d member(s)\n" (join alice_orb alice_listener);
  Printf.printf "bob joins   -> %d member(s)\n\n" (join bob_orb bob_listener);

  let post orb ~from ~text =
    ignore
      (Orb.invoke orb room ~op:"post" (fun e ->
           e.Wire.Codec.put_string from;
           e.Wire.Codec.put_string text))
  in
  post alice_orb ~from:"alice" ~text:"hello from a real TCP socket";
  post bob_orb ~from:"bob" ~text:"hi! the room called me back";
  post alice_orb ~from:"alice" ~text:"one connection per peer, cached";

  (* Give the callback threads a moment to drain. *)
  let rec wait tries =
    if tries > 0 && (List.length !alice_recv < 3 || List.length !bob_recv < 3)
    then (
      Thread.delay 0.02;
      wait (tries - 1))
  in
  wait 250;

  Printf.printf "\nalice saw %d messages, bob saw %d\n"
    (List.length !alice_recv) (List.length !bob_recv);
  Printf.printf "sockets opened: alice %d, bob %d, room %d\n"
    (Orb.connections_opened alice_orb)
    (Orb.connections_opened bob_orb)
    (Orb.connections_opened room_orb);

  Orb.shutdown alice_orb;
  Orb.shutdown bob_orb;
  Orb.shutdown room_orb
