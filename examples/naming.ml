(* Advanced runtime features in one tour: bootstrap naming, dispatch-path
   filters/interceptors, and smart proxies.

   These are the Section 5 "expose-a-hook" customizations (Orbix filters
   and smart proxies, Visibroker interceptors) implemented on this
   runtime, plus the bootstrap-port naming that makes the first
   reference discoverable from an endpoint alone (Section 3.1).

   Run with: dune exec examples/naming.exe *)

let sensor_type = "IDL:Plant/Sensor:1.0"

let sensor_skeleton ~name =
  let reading = ref 20.0 in
  let reads = ref 0 in
  ( Orb.Skeleton.create ~type_id:sensor_type
      [
        ("read", fun _ results ->
            incr reads;
            results.Wire.Codec.put_double !reading);
        ("calibrate", fun args results ->
            reading := args.Wire.Codec.get_double ();
            results.Wire.Codec.put_bool true);
        ("name", fun _ results -> results.Wire.Codec.put_string name);
      ],
    reads )

let () =
  (* The plant server: several sensors behind a bootstrap registry. *)
  let server = Orb.create () in
  Orb.start server;
  let _boot_ref = Orb.Bootstrap.serve server in
  let furnace, furnace_reads = sensor_skeleton ~name:"furnace" in
  let turbine, _ = sensor_skeleton ~name:"turbine" in
  Orb.Bootstrap.bind server ~name:"sensors/furnace" (Orb.export server furnace);
  Orb.Bootstrap.bind server ~name:"sensors/turbine" (Orb.export server turbine);

  (* A dispatch-path filter: block calibration except from... anyone, in
     this demo — the point is that the servant never sees the request. *)
  Orb.Interceptor.add (Orb.server_interceptors server)
    (Orb.Interceptor.deny
       (fun ~op ~type_id:_ -> op = "calibrate")
       ~reason:"calibration is locked out");

  (* The monitoring client knows only the server's endpoint. *)
  let client = Orb.create () in
  let boot =
    Orb.Bootstrap.reference ~proto:"mem" ~host:"local" ~port:(Orb.port server)
  in
  Printf.printf "bootstrap reference: %s\n" (Orb.Objref.to_string boot);
  Printf.printf "names bound there:   %s\n\n"
    (String.concat ", " (Orb.Bootstrap.list_names client boot));

  (* A logging interceptor on the client side sees every call. *)
  Orb.Interceptor.add (Orb.client_interceptors client)
    (Orb.Interceptor.logger (fun line -> Printf.printf "  [client log] %s\n" line));

  let furnace_ref = Orb.Bootstrap.resolve client boot ~name:"sensors/furnace" in

  (* A smart proxy caches the reading; "calibrate" invalidates it. *)
  let proxy = Orb.smart_proxy client ~invalidate_on:[ "calibrate" ] furnace_ref in
  let read () =
    (Orb.Smart.call proxy ~op:"read" (fun _ -> ())).Wire.Codec.get_double ()
  in
  Printf.printf "\nreading 5 times through the smart proxy:\n";
  for _ = 1 to 5 do
    Printf.printf "  furnace = %.1f\n" (read ())
  done;
  Printf.printf "remote reads actually performed: %d (hits %d, misses %d)\n\n"
    !furnace_reads (Orb.Smart.hits proxy) (Orb.Smart.misses proxy);

  (* The calibration filter rejects before dispatch. *)
  (try
     ignore
       (Orb.Smart.call proxy ~op:"calibrate" (fun e -> e.Wire.Codec.put_double 99.0))
   with Orb.System_exception m -> Printf.printf "calibrate blocked: %s\n" m);
  Printf.printf "furnace reading unchanged: %.1f\n" (read ());

  Orb.shutdown client;
  Orb.shutdown server
