(* Replicated endpoints, lease-based naming, failover, and
   location-forward in one tour (DESIGN.md "Replication and naming").

   Three replica servers export the same sensor object; each registers
   itself at a naming servant under a TTL lease. The client resolves
   once and receives a single multi-endpoint reference — the runtime
   spreads calls over the replicas (power-of-two-choices), fails over
   when one dies, and the breaker fences the dead endpoint off. When a
   lease lapses, resolving again reflects the surviving set. Finally, a
   server-side location forward redirects clients mid-flight.

   Run with: dune exec examples/naming.exe *)

let sensor_type = "IDL:Plant/Sensor:1.0"
let oid = "sensor"

let sensor_skeleton ~name =
  let reads = ref 0 in
  ( Orb.Skeleton.create ~type_id:sensor_type
      [
        ( "read",
          fun _ results ->
            incr reads;
            results.Wire.Codec.put_double 20.0 );
        ("name", fun _ results -> results.Wire.Codec.put_string name);
      ],
    reads )

let start_replica ~name =
  let orb = Orb.create () in
  Orb.start orb;
  let skel, reads = sensor_skeleton ~name in
  let r = Orb.export_named orb ~oid skel in
  (orb, r, reads)

let () =
  (* The naming server, on its own ORB like a real deployment. *)
  let ns = Orb.create () in
  Orb.start ns;
  let _registry, nref = Orb.Naming.serve ns in
  Printf.printf "naming servant:    %s\n" (Orb.Objref.to_string nref);

  (* Three replicas of the same logical sensor, each registering itself
     under a short lease it would have to keep renewing. *)
  let replicas = List.map (fun n -> start_replica ~name:n) [ "a"; "b"; "c" ] in
  let client =
    Orb.create ~retry:{ Orb.Retry.default with max_attempts = 4 }
      ~breaker:{ Orb.Breaker.default_config with failure_threshold = 1 }
      ()
  in
  List.iter
    (fun (_, r, _) ->
      ignore (Orb.Naming.register client nref ~name:"plant/sensor" r ~ttl:5.))
    replicas;

  (* One resolve returns the merged endpoint set. *)
  let resolver = Orb.Naming.resolver client nref ~name:"plant/sensor" in
  let sensor = Orb.Naming.current resolver in
  Printf.printf "resolved:          %s\n\n" (Orb.Objref.to_string sensor);

  let read () =
    match Orb.Naming.call client resolver ~op:"read" (fun _ -> ()) with
    | Some d -> d.Wire.Codec.get_double ()
    | None -> assert false
  in
  for _ = 1 to 30 do
    ignore (read ())
  done;
  List.iter
    (fun (_, r, reads) ->
      Printf.printf "replica %s served %2d reads\n"
        (Orb.Objref.to_string (Orb.Objref.at_endpoint r (Orb.Objref.endpoint r)))
        !reads)
    replicas;

  (* Kill one replica: calls keep succeeding on the survivors. *)
  let dead_orb, dead_ref, _ = List.hd replicas in
  Orb.shutdown dead_orb;
  Orb.Naming.unregister client nref ~name:"plant/sensor" dead_ref;
  for _ = 1 to 10 do
    ignore (read ())
  done;
  let st = Orb.stats client in
  Printf.printf "\nafter killing one replica: failovers=%d, breakers=[%s]\n"
    st.Orb.failovers
    (String.concat "; "
       (List.map (fun (k, s) -> k ^ "=" ^ s) st.Orb.breaker_states));

  (* Location forward: replica b starts redirecting to replica c. *)
  let orb_b, _, _ = List.nth replicas 1 in
  let _, ref_c, reads_c = List.nth replicas 2 in
  Orb.set_forward orb_b ~oid ref_c;
  let before = !reads_c in
  for _ = 1 to 10 do
    ignore (read ())
  done;
  Printf.printf "after forwarding b->c: replica c served %d more reads, \
                 client followed %d forwards\n"
    (!reads_c - before)
    (Orb.stats client).Orb.forwards;

  Printf.printf "\nstats snapshot: %s\n" (Orb.stats_to_json (Orb.stats client))
