(* Multi-mapping: one IDL file, five language conventions.

   The paper's point (Section 4): with a template-driven compiler, "the
   very same compiler can be utilized with alternate templates to
   generate code in different implementation languages". This example
   compiles the same interface through every built-in mapping and prints
   the results side by side.

   Run with: dune exec examples/multi_mapping.exe *)

let receiver_idl =
  {|/* Fig. 10's interface. */
interface Receiver {
  void print(in string text);
  long count();
};
|}

let rule = String.make 70 '-'

let () =
  print_endline "One IDL interface:";
  print_string receiver_idl;
  List.iter
    (fun (mapping : Mappings.Mapping.t) ->
      Printf.printf "\n%s\n" rule;
      Printf.printf "Mapping %S (%s): %s\n" mapping.Mappings.Mapping.name
        mapping.Mappings.Mapping.language mapping.Mappings.Mapping.description;
      Printf.printf "%s\n" rule;
      let result =
        Core.Compiler.compile_string ~filename:"Receiver.idl"
          ~file_base:"Receiver" ~mapping receiver_idl
      in
      List.iter
        (fun (name, content) -> Printf.printf "--- %s ---\n%s" name content)
        result.Core.Compiler.files)
    Mappings.Registry.all
