(* Protocol swap: the same stubs and skeletons over two wire protocols.

   Section 2 of the paper argues the ORB protocol should be configurable:
   standard protocols are "expensive to use because they are designed for
   generality", while "for many applications, a simple protocol or
   messaging format may suffice". Here the identical generated code runs
   over (a) the HeidiRMI newline-terminated text protocol and (b) the
   GIOP-like binary protocol — only the Protocol.t handed to Orb.create
   changes.

   The example also shows the paper's favourite debugging trick
   (Section 4.2): because the text protocol is a line of ASCII, a "human
   client" can open a raw connection to the bootstrap port and type a
   request in by hand — here we do exactly that over the raw transport.

   Run with: dune exec examples/protocol_swap.exe *)

open Heidi_rmi

let hexdump s =
  let buf = Buffer.create 128 in
  String.iteri
    (fun i c ->
      if i > 0 && i mod 16 = 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (Printf.sprintf "%02x " (Char.code c)))
    s;
  Buffer.contents buf

let demo protocol label =
  Printf.printf "=== %s ===\n" label;
  let server = Orb.create ~protocol () in
  Orb.start server;
  let camera = Orb.export server
      (Heidi_Camera.skeleton
         {
           Heidi_Camera.attach = (fun _ () -> ());
           describe =
             (fun () -> { name = "cam"; bitrate_kbps = 750; live = true });
           zoom = (fun _ () -> ());
           hint = (fun _ () -> ());
           get_state = (fun () -> Start);
         })
  in
  let client = Orb.create ~protocol () in
  let stub = Heidi_Camera.Stub.of_ref client camera in
  let info = Heidi_Camera.Stub.describe stub () in
  Printf.printf "describe() -> %s @%dkbps\n" info.name info.bitrate_kbps;

  (* Show what a request actually looks like on the wire. *)
  let req =
    Orb.Protocol.Request
      {
        Orb.Protocol.req_id = 7;
        target = camera;
        operation = "zoom";
        oneway = false;
        trace_ctx = "";
        budget_us = None;
        nego_offer = "";
        payload =
          (let e = protocol.Orb.Protocol.codec.Wire.Codec.encoder () in
           e.Wire.Codec.put_long 3;
           e.Wire.Codec.finish ());
      }
  in
  let bytes = protocol.Orb.Protocol.encode_message req in
  Printf.printf "a zoom(3) request in protocol %S (%d bytes):\n"
    protocol.Orb.Protocol.name (String.length bytes);
  (match protocol.Orb.Protocol.framing with
  | Orb.Protocol.Line -> Printf.printf "  %s\n" bytes
  | Orb.Protocol.Length_prefixed _ | Orb.Protocol.Varint_prefixed _ ->
      Printf.printf "%s\n" (hexdump bytes));
  Orb.shutdown client;
  Orb.shutdown server;
  print_newline ();
  (bytes, camera)

let telnet_scenario () =
  (* The "human client": speak the text protocol over a raw channel. *)
  print_endline "=== telnet-style debugging (Section 4.2) ===";
  let server = Orb.create () in
  Orb.start server;
  let counter = ref 0 in
  let skel =
    Orb.Skeleton.create ~type_id:"IDL:Debug/Counter:1.0"
      [
        ("bump", fun args results ->
            counter := !counter + args.Wire.Codec.get_long ();
            results.Wire.Codec.put_long !counter);
      ]
  in
  let target = Orb.export server skel in
  let chan =
    Orb.Transport.connect ~proto:"mem" ~host:"local" ~port:(Orb.port server)
  in
  (* Type a request by hand: message tag, request id, oneway flag,
     target, operation, payload-as-string. *)
  let line =
    Printf.sprintf "o0 L1 bF s\"%s\" s\"bump\" s\"l5\""
      (Orb.Objref.to_string target)
  in
  Printf.printf "typing:  %s\n" line;
  chan.Orb.Transport.write (line ^ "\n");
  let reply = chan.Orb.Transport.read_line () in
  Printf.printf "reply:   %s\n" reply;
  chan.Orb.Transport.write (line ^ "\n");
  Printf.printf "again:   %s\n" (chan.Orb.Transport.read_line ());
  chan.Orb.Transport.close ();
  Orb.shutdown server

(* The negotiated upgrade: both ORBs start on the text protocol (the
   universally-understood floor) and advertise the HCX compact codec;
   the first two-way call carries the offer, the server answers, and
   every later call on the connection is HCX. *)
let negotiation_scenario () =
  Printf.printf "=== codec negotiation (text floor -> hcx) ===\n";
  let server = Orb.create ~codecs:[ Orb.Protocol.hcx ] () in
  Orb.start server;
  let camera = Orb.export server
      (Heidi_Camera.skeleton
         {
           Heidi_Camera.attach = (fun _ () -> ());
           describe =
             (fun () -> { name = "cam"; bitrate_kbps = 750; live = true });
           zoom = (fun _ () -> ());
           hint = (fun _ () -> ());
           get_state = (fun () -> Start);
         })
  in
  let client = Orb.create ~codecs:[ Orb.Protocol.hcx ] () in
  let stub = Heidi_Camera.Stub.of_ref client camera in
  let info = Heidi_Camera.Stub.describe stub () in
  Printf.printf "describe() -> %s @%dkbps\n" info.name info.bitrate_kbps;
  let info2 = Heidi_Camera.Stub.describe stub () in
  let s = Orb.stats client in
  Printf.printf
    "negotiations: %d, fallbacks: %d (second describe -> %s rode hcx)\n\n"
    s.Orb.codec_negotiations s.Orb.codec_fallbacks info2.name;
  Orb.shutdown client;
  Orb.shutdown server

let () =
  let text_bytes, _ = demo Orb.Protocol.text "HeidiRMI text protocol" in
  let giop_bytes, _ = demo (Giop.protocol ()) "GIOP-like binary protocol" in
  let hcx_bytes, _ = demo Orb.Protocol.hcx "HCX compact binary protocol" in
  Printf.printf "request size: text %d bytes vs giop %d bytes vs hcx %d bytes\n\n"
    (String.length text_bytes) (String.length giop_bytes)
    (String.length hcx_bytes);
  negotiation_scenario ();
  telnet_scenario ()
