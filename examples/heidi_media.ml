(* Heidi media control: a simulation of the paper's motivating
   application.

   Heidi was NEC's in-house multimedia prototyping system; HeidiRMI was
   built to carry its control messaging (Section 3). This example stands
   in for that workload: a media server hosts camera and mixer objects,
   and a control client drives them over the HeidiRMI text protocol using
   the stubs and skeletons that `idlc --mapping ocaml` generated from
   examples/idl/heidi.idl (checked in under examples/gen/).

   It exercises every Section 3.1 feature:
   - remote calls with results (structs, sequences, enums),
   - attributes ([readonly attribute Status state]),
   - declared exceptions ([raises (SourceBusy)]),
   - oneway calls,
   - object references as parameters,
   - and incopy pass-by-value with a serializable object.

   Run with: dune exec examples/heidi_media.exe *)

open Heidi_rmi

let status_name = function Start -> "Start" | Stop -> "Stop" | Pause -> "Pause"

(* ---------------- servant implementations (server side) ------------- *)

let make_camera ~name ~bitrate =
  let state = ref Stop in
  let attached = ref None in
  {
    Heidi_Camera.attach =
      (fun sink () ->
        match !attached with
        | Some sink0 when sink0 <> sink ->
            raise_heidi_sourcebusy { source = name; retry_after_ms = 250 }
        | _ ->
            attached := Some sink;
            state := Start;
            Printf.printf "  [server] camera %s attached to %s\n%!" name sink);
    describe = (fun () -> { name; bitrate_kbps = !bitrate; live = true });
    zoom =
      (fun level () ->
        Printf.printf "  [server] camera %s zoom -> %d\n%!" name level;
        bitrate := 800 + (100 * level));
    hint =
      (fun text () ->
        Printf.printf "  [server] camera %s hint (oneway): %s\n%!" name text);
    get_state = (fun () -> !state);
  }

let make_mixer server_orb =
  let inputs : heidi_mediainfo list ref = ref [] in
  let levels = ref [ 100; 100 ] in
  let master = ref 80 in
  let client_orb_for_inputs = server_orb in
  {
    Heidi_Mixer.get_master_level = (fun () -> !master);
    set_master_level = (fun v -> master := v);
    add_input =
      (fun cam_ref () ->
        (* The mixer calls *back* through the reference it was handed —
           object references as parameters work in both directions. *)
        let cam = Heidi_Camera.Stub.of_ref client_orb_for_inputs cam_ref in
        let info = Heidi_Camera.Stub.describe cam () in
        inputs := !inputs @ [ info ];
        Printf.printf "  [server] mixer input #%d: %s @%dkbps\n%!"
          (List.length !inputs) info.name info.bitrate_kbps;
        List.length !inputs);
    add_snapshot =
      (fun src_ref () ->
        (* An incopy argument: if it travelled by value, src_ref is a
           *local* reference freshly exported by our factory below. *)
        let src = Heidi_Source.Stub.of_ref client_orb_for_inputs src_ref in
        let info = Heidi_Source.Stub.describe src () in
        inputs := !inputs @ [ info ];
        Printf.printf "  [server] mixer snapshot input: %s (via %s)\n%!"
          info.name src_ref.Orb.Objref.proto;
        List.length !inputs);
    inputs = (fun () -> !inputs);
    levels = (fun () -> !levels);
    set_levels = (fun values () -> levels := values);
  }

(* ---------------- wiring ---------------- *)

let () =
  (* Two address spaces in one process, talking over the in-memory
     transport with the HeidiRMI text protocol. *)
  let server = Orb.create () in
  Orb.start server;
  let client = Orb.create () in
  Orb.start client;

  (* Server setup: two cameras and a mixer. *)
  let cam1 = make_camera ~name:"studio-cam" ~bitrate:(ref 800) in
  let cam2 = make_camera ~name:"field-cam" ~bitrate:(ref 1200) in
  let mixer_impl = make_mixer server in
  let cam1_ref = Orb.export server (Heidi_Camera.skeleton cam1) in
  let cam2_ref = Orb.export server (Heidi_Camera.skeleton cam2) in
  let mixer_ref = Orb.export server (Heidi_Mixer.skeleton mixer_impl) in

  (* The incopy factory: when a Source arrives by value, rebuild a local
     servant from its marshaled state and hand back a local reference
     ("no skeleton is ever created" for the sender's object —
     Section 3.1). *)
  Orb.Serial.register_factory incopy_registry ~type_id:Heidi_Source.repo_id
    (fun d ->
      let info = get_heidi_mediainfo d in
      let local_impl =
        {
          Heidi_Source.attach = (fun _sink () -> ());
          describe = (fun () -> info);
          get_state = (fun () -> Pause);
        }
      in
      Orb.export server (Heidi_Source.skeleton local_impl));

  Printf.printf "camera 1 reference: %s\n" (Orb.Objref.to_string cam1_ref);
  Printf.printf "mixer reference:    %s\n\n" (Orb.Objref.to_string mixer_ref);

  (* Client side: drive the cameras through generated stubs. *)
  let cam1_stub = Heidi_Camera.Stub.of_ref client cam1_ref in
  let mixer = Heidi_Mixer.Stub.of_ref client mixer_ref in

  Printf.printf "cam1 state before attach: %s\n"
    (status_name (Heidi_Camera.Stub.get_state cam1_stub ()));
  Heidi_Camera.Stub.attach cam1_stub "rtp://sink-0" ();
  Printf.printf "cam1 state after attach:  %s\n"
    (status_name (Heidi_Camera.Stub.get_state cam1_stub ()));

  (* A declared exception crosses the wire and is re-raised locally. *)
  (try Heidi_Camera.Stub.attach cam1_stub "rtp://other-sink" ()
   with Orb.Remote_exception { repo_id; payload; codec }
     when repo_id = heidi_sourcebusy_repo_id ->
     let m = decode_heidi_sourcebusy (codec.Wire.Codec.decoder payload) in
     Printf.printf "SourceBusy from %s: retry after %dms\n" m.source
       m.retry_after_ms);

  (* oneway: fire and forget. *)
  Heidi_Camera.Stub.hint cam1_stub "pan left slowly" ();

  Heidi_Camera.Stub.zoom cam1_stub 4 ();
  let info = Heidi_Camera.Stub.describe cam1_stub () in
  Printf.printf "cam1 now: %s @%dkbps live=%b\n" info.name info.bitrate_kbps
    info.live;

  (* Object references as parameters: hand the mixer both cameras. *)
  let n1 = Heidi_Mixer.Stub.add_input mixer cam1_ref () in
  let n2 = Heidi_Mixer.Stub.add_input mixer cam2_ref () in
  Printf.printf "mixer inputs: %d then %d\n" n1 n2;

  (* incopy pass-by-value: serialize a local still-image source. The
     serializer marshals its state; the server reconstructs it locally. *)
  let still = { name = "title-card"; bitrate_kbps = 0; live = false } in
  let still_impl =
    {
      Heidi_Source.attach = (fun _ () -> ());
      describe = (fun () -> still);
      get_state = (fun () -> Pause);
    }
  in
  let still_ref = Orb.export client (Heidi_Source.skeleton still_impl) in
  let n3 =
    Heidi_Mixer.Stub.add_snapshot mixer
      ~ser_src:(fun e -> put_heidi_mediainfo e still)
      still_ref ()
  in
  Printf.printf "mixer inputs after snapshot: %d\n" n3;

  (* Sequences and structs as results. *)
  let all = Heidi_Mixer.Stub.inputs mixer () in
  Printf.printf "mixer sees: %s\n"
    (String.concat ", " (List.map (fun (i : heidi_mediainfo) -> i.name) all));
  Heidi_Mixer.Stub.set_levels mixer [ 80; 95; 100 ] ();
  Printf.printf "levels: %s\n"
    (String.concat " "
       (List.map string_of_int (Heidi_Mixer.Stub.levels mixer ())));

  Printf.printf "\nconnections opened by client: %d (cached and reused)\n"
    (Orb.connections_opened client);
  Printf.printf "requests served by server:    %d\n" (Orb.requests_served server);

  Orb.shutdown client;
  Orb.shutdown server
