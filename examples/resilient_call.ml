(* Fault-tolerant invocation, end to end: a client with a deadline, a
   retry policy and a circuit breaker calling a server whose transport
   misbehaves on a seeded schedule.

     dune exec examples/resilient_call.exe

   The server listens on "faulty:mem" — the fault-injection wrapper
   around the in-memory transport — and the scripted plan refuses every
   connect for a while, then heals. Watch the client: transient refusals
   are retried with backoff; once the failure threshold is crossed the
   breaker trips and calls fast-fail without touching the network; after
   the cool-down a half-open Locate_request probe notices the endpoint
   is back and traffic resumes. *)

module F = Orb.Transport.Fault

let () =
  (* Server side: an ordinary skeleton; only the transport is faulty. *)
  let server = Orb.create ~transport:"faulty:mem" ~host:"local" () in
  Orb.start server;
  let target =
    Orb.export server
      (Orb.Skeleton.create ~type_id:"IDL:Demo/Clock:1.0"
         [
           ("tick", fun args results ->
               results.Wire.Codec.put_long (args.Wire.Codec.get_long () + 1));
         ])
  in

  (* Client side: every fault-tolerance knob turned on. *)
  let client =
    Orb.create ~transport:"mem" ~host:"local"
      ~call_timeout:0.25
      ~retry:{ Orb.Retry.default with max_attempts = 2; base_delay = 0.01 }
      ~breaker:{ Orb.Breaker.failure_threshold = 3; reset_timeout = 0.15 }
      ()
  in

  let show i =
    let state () =
      match Orb.breaker_state client target with
      | Some s -> Orb.Breaker.state_to_string s
      | None -> "-"
    in
    match
      Orb.invoke client target ~op:"tick" (fun e -> e.Wire.Codec.put_long i)
    with
    | Some d ->
        Printf.printf "call %2d -> ok: %d            [breaker %s]\n" i
          (d.Wire.Codec.get_long ()) (state ())
    | None -> ()
    | exception Orb.Transport.Timeout m ->
        Printf.printf "call %2d -> TIMEOUT (%s)  [breaker %s]\n" i m (state ())
    | exception Orb.Transport.Transport_error m ->
        Printf.printf "call %2d -> transport error (%s)  [breaker %s]\n" i m
          (state ())
    | exception Orb.Breaker.Circuit_open m ->
        Printf.printf "call %2d -> fast-fail (%s)  [breaker %s]\n" i m (state ())
  in

  print_endline "-- healthy endpoint --";
  show 1;
  show 2;

  print_endline "-- endpoint goes dark: every connect refused --";
  (* Also sever the cached connection so the outage is total. *)
  F.set_plan (fun { F.op; _ } ->
      match op with
      | `Connect -> Some F.Refuse_connect
      | `Read -> Some F.Drop_read
      | `Write -> None);
  for i = 3 to 7 do
    show i
  done;

  print_endline "-- endpoint heals; breaker cool-down elapses --";
  let injected_during_outage = F.injected () in
  F.clear ();
  Thread.delay 0.2;
  show 8;
  show 9;

  let st = Orb.stats client in
  Printf.printf
    "\nstats: %d conns opened, %d retries, %d timeouts, %d breaker trips, %d fast-fails\n"
    st.Orb.opened st.Orb.retries st.Orb.timeouts st.Orb.breaker_trips
    st.Orb.breaker_fast_fails;
  Printf.printf "injected faults: %s\n"
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%s x%d" k n) injected_during_outage));

  Orb.shutdown client;
  Orb.shutdown server
