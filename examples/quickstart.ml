(* Quickstart: the paper's Fig. 3 end to end.

   Feeds the running example A.idl (with the HeidiRMI syntax extensions:
   a default parameter and an incopy qualifier) through the two-stage
   compiler (Fig. 6) and prints the enhanced syntax tree and the C++
   interface class header that the heidi-cpp mapping generates —
   reproducing the right-hand side of Fig. 3.

   Run with: dune exec examples/quickstart.exe *)

let a_idl =
  {|/* File A.idl (paper Fig. 3) */
module Heidi {
  // External declaration of Heidi::S
  interface S;

  // Heidi::Status
  enum Status {Start, Stop};

  // Heidi::SSequence
  typedef sequence<S> SSequence;

  interface S {
    void ping();
  };

  // Heidi::A
  interface A : S
  {
    void f(in A a);
    void g(incopy S s);
    void p(in long l = 0);
    void q(in Status s = Heidi::Start);
    readonly attribute Status button;
    void s(in boolean b = TRUE);
    void t(in SSequence s);
  };
};
|}

let () =
  print_endline "=== Input IDL (paper Fig. 3, left) ===";
  print_string a_idl;

  (* Stage 1: parse + resolve into the enhanced syntax tree (Fig. 7). *)
  let est = Core.Compiler.est_of_string ~filename:"A.idl" ~file_base:"A" a_idl in
  print_endline "\n=== EST, Fig. 8-style rendering (first 30 lines) ===";
  let perl = Est.Dump.to_perl est in
  String.split_on_char '\n' perl
  |> List.filteri (fun i _ -> i < 30)
  |> List.iter print_endline;
  Printf.printf "... (%d EST nodes total)\n" (Est.Node.size est);

  (* Stage 2: template-driven code generation with the HeidiRMI mapping. *)
  let mapping = Option.get (Mappings.Registry.find "heidi-cpp") in
  let result =
    Core.Compiler.generate ~maps:mapping.Mappings.Mapping.maps
      ~templates:mapping.Mappings.Mapping.templates est
  in
  (match List.assoc_opt "A.hh" result.Core.Compiler.files with
  | Some header ->
      print_endline "\n=== Generated A.hh (paper Fig. 3, right) ===";
      print_string header
  | None -> prerr_endline "BUG: no A.hh generated");
  Printf.printf "\nAlso generated: %s\n"
    (String.concat ", " (List.map fst result.Core.Compiler.files))
