(* Observability, end to end: two ORBs with tracing enabled, a couple of
   calls (one of them failing), then the evidence — correlated
   client/server spans, latency histograms and wire byte counters.

     dune exec examples/traced_call.exe

   The client ORB opens a span around each invocation and propagates its
   trace context in the request's service-context slot; the server ORB
   joins it with a child span around dispatch. Spans stream to the sinks
   registered on each side (here: a bounded ring we read at the end, and
   JSONL on stderr so the raw export format is visible too). *)

let () =
  (* Each side gets its own Obs instance — separate processes in real
     deployments; the trace context on the wire is what links them. *)
  let server_obs = Obs.create () in
  let server_ring, server_spans = Obs.Sink.ring () in
  Obs.add_sink server_obs server_ring;

  let client_obs = Obs.create () in
  let client_ring, client_spans = Obs.Sink.ring () in
  Obs.add_sink client_obs client_ring;
  Obs.add_sink client_obs (Obs.Sink.stderr_jsonl ());

  let server = Orb.create ~transport:"mem" ~host:"local" ~obs:server_obs () in
  Orb.start server;
  let target =
    Orb.export server
      (Orb.Skeleton.create ~type_id:"IDL:Demo/Greeter:1.0"
         [
           ("greet", fun args results ->
               results.Wire.Codec.put_string
                 ("hello, " ^ args.Wire.Codec.get_string ()));
         ])
  in

  let client = Orb.create ~transport:"mem" ~host:"local" ~obs:client_obs () in
  (* The stock interceptor adds per-operation request/outcome counters on
     top of the built-in spans and histograms. *)
  Orb.Interceptor.add
    (Orb.client_interceptors client)
    (Orb.Obs.interceptor client_obs);

  (match
     Orb.invoke client target ~op:"greet" (fun e ->
         e.Wire.Codec.put_string "world")
   with
  | Some d -> Printf.printf "reply: %s\n" (d.Wire.Codec.get_string ())
  | None -> ());
  (* A failing call is traced too: the span records the outcome. *)
  (try
     ignore
       (Orb.invoke client target ~op:"no_such_op" (fun e ->
            e.Wire.Codec.put_string "x"))
   with Orb.System_exception _ -> ());

  (* The correlation the wire context buys: client and server spans of
     one call share a trace id, and the server span's parent is the
     client span. *)
  let c = List.hd (client_spans ()) and s = List.hd (server_spans ()) in
  Printf.printf "\nclient span: trace=%s span=%s op=%s\n" c.Obs.Trace.trace_id
    c.Obs.Trace.span_id c.Obs.Trace.operation;
  Printf.printf "server span: trace=%s parent=%s op=%s\n" s.Obs.Trace.trace_id
    (match s.Obs.Trace.parent_id with Some p -> p | None -> "-")
    s.Obs.Trace.operation;
  Printf.printf "same trace: %b; server's parent is client span: %b\n"
    (c.Obs.Trace.trace_id = s.Obs.Trace.trace_id)
    (s.Obs.Trace.parent_id = Some c.Obs.Trace.span_id);
  Printf.printf
    "client phases (s): marshal=%.2e send=%.2e wait=%.2e unmarshal=%.2e\n"
    c.Obs.Trace.marshal_s c.Obs.Trace.send_s c.Obs.Trace.wait_s
    c.Obs.Trace.unmarshal_s;

  (* Metrics: histograms fed by invoke/dispatch, byte counters fed by the
     metered channels, counters fed by the stock interceptor. *)
  let snap = Obs.snapshot client_obs in
  print_endline "\nclient metrics:";
  List.iter
    (fun (h : Obs.Metrics.hist_view) ->
      Printf.printf "  %-24s total=%d mean=%.1fus max=%.1fus\n" h.Obs.Metrics.name
        h.Obs.Metrics.total
        (h.Obs.Metrics.mean_s *. 1e6)
        (h.Obs.Metrics.max_s *. 1e6))
    snap.Obs.metrics.Obs.Metrics.latencies;
  List.iter
    (fun (b : Obs.Metrics.bytes_view) ->
      Printf.printf "  %-24s out=%dB (%d writes) in=%dB (%d reads)\n"
        b.Obs.Metrics.endpoint b.Obs.Metrics.bytes_out b.Obs.Metrics.writes
        b.Obs.Metrics.bytes_in b.Obs.Metrics.reads)
    snap.Obs.metrics.Obs.Metrics.endpoints;
  List.iter
    (fun (name, v) -> Printf.printf "  %-24s %d\n" name v)
    snap.Obs.metrics.Obs.Metrics.counters;

  Orb.shutdown client;
  Orb.shutdown server
