(* idlc: the template-driven IDL compiler CLI (paper Fig. 6).

   Subcommand-free: one invocation compiles one IDL file through one
   mapping (or a custom template), or dumps intermediate representations:

     idlc A.idl --mapping heidi-cpp -o out/
     idlc A.idl --template my.tmpl -o out/
     idlc A.idl --dump-est          # Fig. 8-style Perl rendering
     idlc A.idl --dump-est-text     # machine-readable EST
     idlc A.idl --reformat          # pretty-print the parsed IDL
     idlc --list-mappings

   Interface Repository (Section 5's OmniBroker integration):

     idlc A.idl --ir /tmp/ir                   # parse and store the EST
     idlc --ir /tmp/ir --ir-list               # what is stored
     idlc --ir /tmp/ir --from-ir A -m tcl      # generate without reparsing
*)

open Cmdliner

let list_mappings () =
  List.iter
    (fun (m : Mappings.Mapping.t) ->
      Printf.printf "%-12s %-6s %s\n" m.Mappings.Mapping.name
        m.Mappings.Mapping.language m.Mappings.Mapping.description;
      List.iter
        (fun t -> Printf.printf "%14s- template %S\n" "" t)
        (Mappings.Mapping.template_names m))
    Mappings.Registry.all

type dump = Dump_none | Dump_perl | Dump_text | Dump_reformat

let ir_list dir =
  let repo = Core.Repository.open_ ~dir in
  List.iter
    (fun unit_name ->
      Printf.printf "%s\n" unit_name;
      match Core.Repository.load repo unit_name with
      | None -> ()
      | Some est ->
          List.iter
            (fun iface ->
              Printf.printf "  %s\n"
                (Est.Node.prop_or iface "repoId" ~default:"<no id>"))
            (Est.Node.group est "interfaceList"))
    (Core.Repository.units repo)

let run input mapping_name template_file out_dir dump list_flag ir_dir ir_list_flag
    from_ir =
  try
    if list_flag then (
      list_mappings ();
      `Ok 0)
    else if ir_list_flag then (
      match ir_dir with
      | Some dir ->
          ir_list dir;
          `Ok 0
      | None -> `Error (true, "--ir-list requires --ir DIR"))
    else
      let est_source () =
        (* The EST comes from the IR (no IDL parsing at all) or from a
           source file; either way stage 2 is identical (Fig. 6). *)
        match (from_ir, ir_dir, input) with
        | Some unit_name, Some dir, _ -> (
            let repo = Core.Repository.open_ ~dir in
            match Core.Repository.load repo unit_name with
            | Some est -> est
            | None ->
                failwith (Printf.sprintf "unit %S is not in the repository" unit_name))
        | Some _, None, _ -> failwith "--from-ir requires --ir DIR"
        | None, _, Some path ->
            let est = Core.Compiler.est_of_file path in
            (match ir_dir with
            | Some dir ->
                let repo = Core.Repository.open_ ~dir in
                let unit_name = Core.Repository.store repo est in
                Printf.eprintf "stored unit %S in %s\n" unit_name dir
            | None -> ());
            est
        | None, _, None -> failwith "an input .idl file (or --from-ir) is required"
      in
      match input with
      | None when from_ir = None -> `Error (true, "an input .idl file is required")
      | _ -> (
          match dump with
          | Dump_reformat ->
              (match input with
              | Some path ->
                  print_string (Idl.Pretty.to_string (Idl.Parser.parse_file path))
              | None -> failwith "--reformat requires an input file");
              `Ok 0
          | Dump_perl ->
              print_string (Est.Dump.to_perl (est_source ()));
              `Ok 0
          | Dump_text ->
              print_string (Est.Dump.to_text (est_source ()));
              `Ok 0
          | Dump_none -> (
              let result =
                match template_file with
                | Some tf ->
                    (* A custom template: run with the union of every
                       built-in mapping's map functions so templates can
                       reference any of them. *)
                    let maps =
                      List.fold_left
                        (fun acc (m : Mappings.Mapping.t) ->
                          Template.Maps.union acc m.Mappings.Mapping.maps)
                        (Template.Maps.create ()) Mappings.Registry.all
                    in
                    let root = est_source () in
                    let src =
                      let ic = open_in_bin tf in
                      Fun.protect
                        ~finally:(fun () -> close_in_noerr ic)
                        (fun () -> really_input_string ic (in_channel_length ic))
                    in
                    Core.Compiler.generate ~maps ~templates:[ (tf, src) ] root
                | None -> (
                    match Mappings.Registry.find mapping_name with
                    | None ->
                        failwith
                          (Printf.sprintf
                             "unknown mapping %S (try --list-mappings)"
                             mapping_name)
                    | Some mapping ->
                        Core.Compiler.generate
                          ~maps:mapping.Mappings.Mapping.maps
                          ~templates:mapping.Mappings.Mapping.templates
                          (est_source ()))
              in
              if result.Core.Compiler.stdout <> "" then
                print_string result.Core.Compiler.stdout;
              match out_dir with
              | Some dir ->
                  let written = Core.Compiler.write_result ~dir result in
                  List.iter (Printf.printf "wrote %s\n") written;
                  `Ok 0
              | None ->
                  List.iter
                    (fun (name, content) ->
                      Printf.printf "===== %s =====\n%s" name content)
                    result.Core.Compiler.files;
                  `Ok 0))
  with
  | Idl.Diag.Idl_error d ->
      Printf.eprintf "%s\n" (Idl.Diag.to_string d);
      `Ok 1
  | Template.Parse.Template_error _ as e ->
      Printf.eprintf "%s\n" (Printexc.to_string e);
      `Ok 1
  | Template.Eval.Eval_error _ as e ->
      Printf.eprintf "%s\n" (Printexc.to_string e);
      `Ok 1
  | Failure m ->
      Printf.eprintf "idlc: %s\n" m;
      `Ok 1
  | Sys_error m ->
      Printf.eprintf "idlc: %s\n" m;
      `Ok 1

let input_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.idl" ~doc:"IDL source file.")

let mapping_arg =
  Arg.(
    value
    & opt string "heidi-cpp"
    & info [ "m"; "mapping" ] ~docv:"NAME"
        ~doc:"Built-in mapping to generate with (see $(b,--list-mappings)).")

let template_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "t"; "template" ] ~docv:"FILE.tmpl"
        ~doc:"Generate with a custom template instead of a built-in mapping.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"DIR"
        ~doc:"Write generated files under $(docv) instead of stdout.")

let dump_arg =
  let flags =
    [
      (Dump_perl, Arg.info [ "dump-est" ] ~doc:"Print the Fig. 8-style Perl rendering of the EST and exit.");
      (Dump_text, Arg.info [ "dump-est-text" ] ~doc:"Print the machine-readable EST and exit.");
      (Dump_reformat, Arg.info [ "reformat" ] ~doc:"Pretty-print the parsed IDL and exit.");
    ]
  in
  Arg.(value & vflag Dump_none flags)

let list_arg =
  Arg.(value & flag & info [ "list-mappings" ] ~doc:"List built-in mappings and exit.")

let ir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ir" ] ~docv:"DIR"
        ~doc:
          "Interface Repository directory. With an input file, store its \
           EST there after parsing; combine with $(b,--from-ir) or \
           $(b,--ir-list) to generate or inspect without reparsing.")

let ir_list_arg =
  Arg.(
    value & flag
    & info [ "ir-list" ] ~doc:"List the units and interfaces stored in the IR.")

let from_ir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "from-ir" ] ~docv:"UNIT"
        ~doc:"Generate from a unit stored in the IR instead of parsing IDL.")

let cmd =
  let doc = "template-driven IDL compiler (Welling & Ott, Middleware 2000)" in
  let info = Cmd.info "idlc" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ input_arg $ mapping_arg $ template_arg $ out_arg $ dump_arg
       $ list_arg $ ir_arg $ ir_list_arg $ from_ir_arg))

let () =
  match Cmd.eval_value cmd with
  | Ok (`Ok code) -> exit code
  | Ok _ -> exit 0
  | Error _ -> exit 124
