(* idlc: the template-driven IDL compiler CLI (paper Fig. 6).

   The default (subcommand-free) invocation compiles one IDL file through
   one mapping (or a custom template), or dumps intermediate
   representations:

     idlc A.idl --mapping heidi-cpp -o out/
     idlc A.idl --template my.tmpl -o out/
     idlc A.idl --dump-est          # Fig. 8-style Perl rendering
     idlc A.idl --dump-est-text     # machine-readable EST
     idlc A.idl --reformat          # pretty-print the parsed IDL
     idlc --list-mappings

   Interface Repository (Section 5's OmniBroker integration):

     idlc A.idl --ir /tmp/ir                   # parse and store the EST
     idlc --ir /tmp/ir --ir-list               # what is stored
     idlc --ir /tmp/ir --from-ir A -m tcl      # generate without reparsing

   Static analysis (the `lint` subcommand) checks .idl and .tmpl files
   without generating code, with error recovery so one run reports every
   independent problem:

     idlc lint A.idl B.tmpl
     idlc lint A.idl --against /tmp/ir         # interface-evolution diff
     idlc lint --explain E010

   Exit codes (all commands): 0 success, 1 diagnostics were produced
   (compile error, or lint errors / --werror'd warnings), 2 command-line
   usage error. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let print_warning d = Printf.eprintf "%s\n" (Idl.Diag.to_string d)

(* The union of every built-in mapping's map functions, for custom
   templates that may reference any of them. *)
let all_maps () =
  List.fold_left
    (fun acc (m : Mappings.Mapping.t) ->
      Template.Maps.union acc m.Mappings.Mapping.maps)
    (Template.Maps.create ()) Mappings.Registry.all

(* ---------------- compile (the default command) ---------------- *)

let list_mappings () =
  List.iter
    (fun (m : Mappings.Mapping.t) ->
      Printf.printf "%-12s %-6s %s\n" m.Mappings.Mapping.name
        m.Mappings.Mapping.language m.Mappings.Mapping.description;
      List.iter
        (fun t -> Printf.printf "%14s- template %S\n" "" t)
        (Mappings.Mapping.template_names m))
    Mappings.Registry.all

type dump = Dump_none | Dump_perl | Dump_text | Dump_reformat

let ir_list dir =
  let repo = Core.Repository.open_ ~dir in
  List.iter
    (fun unit_name ->
      Printf.printf "%s\n" unit_name;
      match Core.Repository.load repo unit_name with
      | None -> ()
      | Some est ->
          List.iter
            (fun iface ->
              Printf.printf "  %s\n"
                (Est.Node.prop_or iface "repoId" ~default:"<no id>"))
            (Est.Node.group est "interfaceList"))
    (Core.Repository.units repo)

let run input mapping_name template_file out_dir dump list_flag ir_dir ir_list_flag
    from_ir werror =
  (* Resolver warnings go to stderr in every compile mode; --werror makes
     any warning fatal (after the run completes). *)
  let warned = ref 0 in
  let warn d =
    incr warned;
    print_warning
      (if werror then { d with Idl.Diag.severity = Idl.Diag.Error } else d)
  in
  let finish code =
    if werror && !warned > 0 && code = 0 then `Ok 1 else `Ok code
  in
  try
    if list_flag then (
      list_mappings ();
      `Ok 0)
    else if ir_list_flag then (
      match ir_dir with
      | Some dir ->
          ir_list dir;
          `Ok 0
      | None -> `Error (true, "--ir-list requires --ir DIR"))
    else
      let est_source () =
        (* The EST comes from the IR (no IDL parsing at all) or from a
           source file; either way stage 2 is identical (Fig. 6). *)
        match (from_ir, ir_dir, input) with
        | Some unit_name, Some dir, _ -> (
            let repo = Core.Repository.open_ ~dir in
            match Core.Repository.load repo unit_name with
            | Some est -> est
            | None ->
                failwith (Printf.sprintf "unit %S is not in the repository" unit_name))
        | Some _, None, _ -> failwith "--from-ir requires --ir DIR"
        | None, _, Some path ->
            let est = Core.Compiler.est_of_file ~warn path in
            (match ir_dir with
            | Some dir ->
                let repo = Core.Repository.open_ ~dir in
                let unit_name = Core.Repository.store repo est in
                Printf.eprintf "stored unit %S in %s\n" unit_name dir
            | None -> ());
            est
        | None, _, None -> failwith "an input .idl file (or --from-ir) is required"
      in
      match input with
      | None when from_ir = None -> `Error (true, "an input .idl file is required")
      | _ -> (
          match dump with
          | Dump_reformat ->
              (match input with
              | Some path ->
                  print_string (Idl.Pretty.to_string (Idl.Parser.parse_file path))
              | None -> failwith "--reformat requires an input file");
              finish 0
          | Dump_perl ->
              print_string (Est.Dump.to_perl (est_source ()));
              finish 0
          | Dump_text ->
              print_string (Est.Dump.to_text (est_source ()));
              finish 0
          | Dump_none -> (
              let result =
                match template_file with
                | Some tf ->
                    let root = est_source () in
                    Core.Compiler.generate ~maps:(all_maps ())
                      ~templates:[ (tf, read_file tf) ]
                      root
                | None -> (
                    match Mappings.Registry.find mapping_name with
                    | None ->
                        failwith
                          (Printf.sprintf
                             "unknown mapping %S (try --list-mappings)"
                             mapping_name)
                    | Some mapping ->
                        Core.Compiler.generate
                          ~maps:mapping.Mappings.Mapping.maps
                          ~templates:mapping.Mappings.Mapping.templates
                          (est_source ()))
              in
              if result.Core.Compiler.stdout <> "" then
                print_string result.Core.Compiler.stdout;
              match out_dir with
              | Some dir ->
                  let written = Core.Compiler.write_result ~dir result in
                  List.iter (Printf.printf "wrote %s\n") written;
                  finish 0
              | None ->
                  List.iter
                    (fun (name, content) ->
                      Printf.printf "===== %s =====\n%s" name content)
                    result.Core.Compiler.files;
                  finish 0))
  with
  | Idl.Diag.Idl_error d ->
      Format.eprintf "%a@." Idl.Diag.pp d;
      `Ok 1
  | Template.Parse.Template_error _ as e ->
      Printf.eprintf "%s\n" (Printexc.to_string e);
      `Ok 1
  | Template.Eval.Eval_error _ as e ->
      Printf.eprintf "%s\n" (Printexc.to_string e);
      `Ok 1
  | Failure m ->
      Printf.eprintf "idlc: %s\n" m;
      `Ok 1
  | Sys_error m ->
      Printf.eprintf "idlc: %s\n" m;
      `Ok 1

let input_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.idl" ~doc:"IDL source file.")

let mapping_arg =
  Arg.(
    value
    & opt string "heidi-cpp"
    & info [ "m"; "mapping" ] ~docv:"NAME"
        ~doc:"Built-in mapping to generate with (see $(b,--list-mappings)).")

let template_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "t"; "template" ] ~docv:"FILE.tmpl"
        ~doc:"Generate with a custom template instead of a built-in mapping.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"DIR"
        ~doc:"Write generated files under $(docv) instead of stdout.")

let dump_arg =
  let flags =
    [
      (Dump_perl, Arg.info [ "dump-est" ] ~doc:"Print the Fig. 8-style Perl rendering of the EST and exit.");
      (Dump_text, Arg.info [ "dump-est-text" ] ~doc:"Print the machine-readable EST and exit.");
      (Dump_reformat, Arg.info [ "reformat" ] ~doc:"Pretty-print the parsed IDL and exit.");
    ]
  in
  Arg.(value & vflag Dump_none flags)

let list_arg =
  Arg.(value & flag & info [ "list-mappings" ] ~doc:"List built-in mappings and exit.")

let ir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ir" ] ~docv:"DIR"
        ~doc:
          "Interface Repository directory. With an input file, store its \
           EST there after parsing; combine with $(b,--from-ir) or \
           $(b,--ir-list) to generate or inspect without reparsing.")

let ir_list_arg =
  Arg.(
    value & flag
    & info [ "ir-list" ] ~doc:"List the units and interfaces stored in the IR.")

let from_ir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "from-ir" ] ~docv:"UNIT"
        ~doc:"Generate from a unit stored in the IR instead of parsing IDL.")

let werror_arg =
  Arg.(
    value & flag
    & info [ "werror" ]
        ~doc:"Treat warnings as errors: any warning makes the exit status 1.")

(* ---------------- lint ---------------- *)

let lint_run files against_dir mapping_names json werror enables disables
    explain =
  match explain with
  | Some "" ->
      print_string (Analysis.Codes.table ());
      print_newline ();
      `Ok 0
  | Some code -> (
      match Analysis.Codes.explain code with
      | Some text ->
          print_string text;
          `Ok 0
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown diagnostic code %S (try --explain with \
                              no argument for the list)"
                code ))
  | None -> (
      match
        List.find_opt
          (fun c -> not (Analysis.Codes.is_known c))
          (enables @ disables)
      with
      | Some c ->
          `Error (false, Printf.sprintf "unknown diagnostic code %S" c)
      | None -> (
          let mappings =
            match mapping_names with
            | [] -> Ok Mappings.Registry.all
            | names -> (
                match
                  List.find_opt
                    (fun n -> Mappings.Registry.find n = None)
                    names
                with
                | Some n ->
                    Error
                      (Printf.sprintf "unknown mapping %S (try --list-mappings)"
                         n)
                | None ->
                    Ok (List.filter_map Mappings.Registry.find names))
          in
          match mappings with
          | Error m -> `Error (false, m)
          | Ok _ when files = [] ->
              `Error (true, "no input files (expected .idl and/or .tmpl)")
          | Ok mappings -> (
              let reporter = Idl.Diag.reporter ~werror () in
              List.iter
                (fun c -> Idl.Diag.set_enabled reporter c false)
                disables;
              List.iter (fun c -> Idl.Diag.set_enabled reporter c true) enables;
              let lint_one path =
                if Filename.check_suffix path ".tmpl" then
                  ignore (Analysis.Tmpl_check.check_file reporter path)
                else
                  match Analysis.Lint.run_file ~mappings reporter path with
                  | None -> () (* syntax error: already reported *)
                  | Some spec -> (
                      match against_dir with
                      | None -> ()
                      | Some ir_dir ->
                          let root = Est.Build.of_spec spec in
                          Est.Node.add_prop root "fileBase"
                            (Filename.remove_extension (Filename.basename path));
                          Est.Node.add_prop root "fileName" path;
                          if
                            not
                              (Analysis.Evolve.against reporter ~ir_dir
                                 ~file:path root)
                          then
                            Printf.eprintf
                              "idlc lint: note: no snapshot for %S in %s \
                               (nothing to compare)\n"
                              path ir_dir)
              in
              try
                List.iter lint_one files;
                if json then print_string (Idl.Diag.render_json reporter)
                else (
                  let text = Idl.Diag.render_text reporter in
                  if text <> "" then prerr_string text;
                  let e = Idl.Diag.error_count reporter
                  and w = Idl.Diag.warning_count reporter in
                  if e > 0 || w > 0 then
                    Printf.eprintf "%d error%s, %d warning%s\n" e
                      (if e = 1 then "" else "s")
                      w
                      (if w = 1 then "" else "s"));
                `Ok (if Idl.Diag.has_errors reporter then 1 else 0)
              with Sys_error m ->
                Printf.eprintf "idlc: %s\n" m;
                `Ok 1)))

let lint_files_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "Files to check: $(b,.tmpl) files go through the template \
           checker, everything else through the IDL front end and lint \
           passes.")

let against_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "against" ] ~docv:"IR-DIR"
        ~doc:
          "Diff each IDL file's interfaces against the snapshot stored in \
           this Interface Repository directory; wire-breaking changes are \
           errors (V301-V304), additions are W310 warnings.")

let lint_mapping_arg =
  Arg.(
    value & opt_all string []
    & info [ "m"; "mapping" ] ~docv:"NAME"
        ~doc:
          "Check identifiers against this mapping's reserved words (W105); \
           repeatable. Default: every built-in mapping.")

let json_arg =
  Arg.(
    value & flag
    & info [ "lint-json" ]
        ~doc:"Print diagnostics as a JSON array on stdout instead of text.")

let enable_arg =
  Arg.(
    value & opt_all string []
    & info [ "enable" ] ~docv:"CODE"
        ~doc:"Re-enable a warning code disabled by $(b,--disable).")

let disable_arg =
  Arg.(
    value & opt_all string []
    & info [ "disable" ] ~docv:"CODE"
        ~doc:"Suppress a warning code (errors cannot be disabled).")

let explain_arg =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "explain" ] ~docv:"CODE"
        ~doc:
          "Explain a diagnostic code and exit; with no $(docv), list every \
           code.")

let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:
        "on diagnostics: a compile-time error, lint errors, or warnings \
         under $(b,--werror).";
    Cmd.Exit.info 2 ~doc:"on command-line usage errors.";
  ]

let lint_cmd =
  let doc = "statically check IDL files, templates, and interface evolution" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the IDL front end with error recovery (reporting every \
         independent problem in one pass) plus lint passes over the \
         resolved spec; checks templates against the EST schema without \
         evaluating them; and, with $(b,--against), diffs interfaces \
         against an Interface Repository snapshot, classifying changes as \
         wire-breaking or benign.";
      `P
        "Diagnostic codes are stable: E0xx front-end errors, W1xx lint \
         warnings, T2xx template findings, V3xx evolution findings. Use \
         $(b,--explain) $(i,CODE) for the rationale behind any code.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man ~exits)
    Term.(
      ret
        (const lint_run $ lint_files_arg $ against_arg $ lint_mapping_arg
       $ json_arg $ werror_arg $ enable_arg $ disable_arg $ explain_arg))

(* ---------------- analyze-conc ---------------- *)

let conc_run paths json werror enables disables explain =
  match explain with
  | Some "" ->
      print_string (Analysis.Codes.table ());
      print_newline ();
      `Ok 0
  | Some code -> (
      match Analysis.Codes.explain code with
      | Some text ->
          print_string text;
          `Ok 0
      | None ->
          `Error
            ( false,
              Printf.sprintf "unknown diagnostic code %S (try --explain with \
                              no argument for the list)"
                code ))
  | None -> (
      match
        List.find_opt
          (fun c -> not (Analysis.Codes.is_known c))
          (enables @ disables)
      with
      | Some c -> `Error (false, Printf.sprintf "unknown diagnostic code %S" c)
      | None when paths = [] ->
          `Error (true, "no input paths (expected .ml files or directories)")
      | None -> (
          let reporter = Idl.Diag.reporter ~werror () in
          List.iter (fun c -> Idl.Diag.set_enabled reporter c false) disables;
          List.iter (fun c -> Idl.Diag.set_enabled reporter c true) enables;
          try
            List.iter (Analysis.Conc.check_path reporter) paths;
            if json then print_string (Idl.Diag.render_json reporter)
            else (
              let text = Idl.Diag.render_text reporter in
              if text <> "" then prerr_string text;
              let e = Idl.Diag.error_count reporter
              and w = Idl.Diag.warning_count reporter in
              if e > 0 || w > 0 then
                Printf.eprintf "%d error%s, %d warning%s\n" e
                  (if e = 1 then "" else "s")
                  w
                  (if w = 1 then "" else "s"));
            `Ok (if Idl.Diag.has_errors reporter then 1 else 0)
          with Sys_error m ->
            Printf.eprintf "idlc: %s\n" m;
            `Ok 1))

let conc_paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:
          "OCaml sources to analyze: $(b,.ml) files, or directories \
           searched recursively (skipping $(b,_build) and dot \
           directories).")

let conc_cmd =
  let doc = "check the ORB sources' lock-rank discipline (C4xx)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses OCaml sources with the compiler's own parser and checks \
         the concurrency conventions the runtime's $(b,Locked) module \
         documents: rank-ordered lock acquisition (C401), no blocking \
         calls under a lock (C402), no raw threading primitives outside \
         locked.ml (C403), no unlocked mutation of module-level state \
         (C404), no split atomic read-modify-write (C405), and every \
         lock carrying a registered rank (C406).";
      `P
        "The pass is syntactic and per-file; the runtime checker \
         (ORB_LOCK_CHECK=1) covers what wrappers hide from it. Use \
         $(b,--explain) $(i,CODE) for the rationale behind any code.";
    ]
  in
  Cmd.v
    (Cmd.info "analyze-conc" ~doc ~man ~exits)
    Term.(
      ret
        (const conc_run $ conc_paths_arg $ json_arg $ werror_arg $ enable_arg
       $ disable_arg $ explain_arg))

(* ---------------- entry point ---------------- *)

let compile_cmd =
  let doc = "template-driven IDL compiler (Welling & Ott, Middleware 2000)" in
  let man =
    [
      `S Manpage.s_commands;
      `P
        "$(b,lint) $(i,FILE)... — statically check IDL files, templates, \
         and interface evolution (see $(b,idlc lint --help)).";
      `P
        "$(b,analyze-conc) $(i,PATH)... — check OCaml sources against the \
         ORB's lock-rank discipline (see $(b,idlc analyze-conc --help)).";
    ]
  in
  Cmd.v
    (Cmd.info "idlc" ~version:"1.0.0" ~doc ~man ~exits)
    Term.(
      ret
        (const run $ input_arg $ mapping_arg $ template_arg $ out_arg $ dump_arg
       $ list_arg $ ir_arg $ ir_list_arg $ from_ir_arg $ werror_arg))

(* [idlc FILE.idl] predates the [lint] subcommand, so dispatch on argv
   rather than Cmd.group (which would eat the positional file argument as
   an unknown command name). *)
let () =
  let eval =
    match Array.to_list Sys.argv with
    | argv0 :: "lint" :: rest ->
        fun () ->
          Cmd.eval_value
            ~argv:(Array.of_list ((argv0 ^ " lint") :: rest))
            lint_cmd
    | argv0 :: "analyze-conc" :: rest ->
        fun () ->
          Cmd.eval_value
            ~argv:(Array.of_list ((argv0 ^ " analyze-conc") :: rest))
            conc_cmd
    | _ -> fun () -> Cmd.eval_value compile_cmd
  in
  match eval () with
  | Ok (`Ok code) -> exit code
  | Ok _ -> exit 0
  | Error _ -> exit 2
  | exception Idl.Diag.Idl_error d ->
      (* Safety net: any diagnostic escaping a command is rendered, not
         dumped as a backtrace. *)
      Format.eprintf "%a@." Idl.Diag.pp d;
      exit 1
